//! Fig 2.5 — snapshots of the propagating Northridge wavefield.
//!
//! The paper shows surface wave-field snapshots with strong directivity
//! along strike from the epicenter and concentrated motion near the fault
//! corners. We run the scaled Northridge scenario, capture surface-velocity
//! snapshots at several times, render them as ASCII maps, and quantify the
//! directivity (peak motion in the rupture direction vs behind it).

use quake_bench::{ascii_heatmap, full_scale};
use quake_core::northridge_scenario;
use quake_mesh::mesh_from_model;
use quake_solver::{assemble_point_sources, ElasticSolver};

fn main() {
    let extent = if full_scale() { 40_000.0 } else { 20_000.0 };
    let fmax = if full_scale() { 0.5 } else { 0.4 };
    let duration = if full_scale() { 16.0 } else { 10.0 };
    let (model, mut scenario) = northridge_scenario(extent, fmax, 400.0, duration, 8);
    scenario.meshing.max_level = if full_scale() { 8 } else { 7 };
    let (tree, mesh) = mesh_from_model(&scenario.meshing, &model);
    println!(
        "mesh: {} elements / {} nodes; fault strike {:.0} deg, hypocenter {:?}",
        mesh.n_elements(),
        mesh.n_nodes(),
        scenario.fault.strike.to_degrees(),
        scenario.fault.hypocenter().map(|v| (v / 1000.0 * 10.0).round() / 10.0)
    );
    let solver = ElasticSolver::new(&mesh, &scenario.solve);
    let sources = assemble_point_sources(&mesh, &tree, &scenario.fault.discretize(6, 4));

    // March manually, sampling surface velocity at snapshot times.
    let n = 40; // surface raster
    let surface: Vec<u32> = {
        let mut ids = Vec::with_capacity(n * n);
        for j in 0..n {
            for i in 0..n {
                let p = [
                    extent * (i as f64 + 0.5) / n as f64,
                    extent * (j as f64 + 0.5) / n as f64,
                    0.0,
                ];
                ids.push(mesh.nearest_node(p));
            }
        }
        ids
    };
    let snap_times: Vec<f64> = (1..=4).map(|k| duration * k as f64 / 4.0).collect();
    let ndof = 3 * mesh.n_nodes();
    let (mut up, mut unow, mut unext) = (vec![0.0; ndof], vec![0.0; ndof], vec![0.0; ndof]);
    let mut f = vec![0.0; ndof];
    let mut ws = solver.workspace();
    let mut peak = vec![0.0f64; n * n];
    let mut next_snap = 0usize;
    let nn = mesh.n_nodes();
    for k in 0..solver.n_steps {
        let t = k as f64 * solver.dt;
        f.iter_mut().for_each(|v| *v = 0.0);
        for s in &sources {
            s.add_force_planar(t, &mut f);
        }
        solver.step_with(&up, &unow, &f, &mut unext, &mut ws);
        // Track peak surface velocity magnitude (planar layout:
        // dof = comp * n_nodes + node).
        for (pix, &nd) in surface.iter().enumerate() {
            let nd = nd as usize;
            let mut v2 = 0.0;
            for c in 0..3 {
                let d = c * nn + nd;
                let v = (unext[d] - up[d]) / (2.0 * solver.dt);
                v2 += v * v;
            }
            peak[pix] = peak[pix].max(v2.sqrt());
        }
        if next_snap < snap_times.len() && t >= snap_times[next_snap] {
            let snap: Vec<f64> = surface
                .iter()
                .map(|&nd| {
                    let nd = nd as usize;
                    (0..3)
                        .map(|c| {
                            let d = c * nn + nd;
                            let v = (unext[d] - up[d]) / (2.0 * solver.dt);
                            v * v
                        })
                        .sum::<f64>()
                        .sqrt()
                })
                .collect();
            ascii_heatmap(
                &format!("surface |v| at t = {:.1} s", snap_times[next_snap]),
                &snap,
                n,
                60,
            );
            next_snap += 1;
        }
        std::mem::swap(&mut up, &mut unow);
        std::mem::swap(&mut unow, &mut unext);
    }
    ascii_heatmap("peak surface velocity over the whole record", &peak, n, 60);

    // Directivity: rupture propagates up-dip/along-strike; compare peak
    // motion ahead of the rupture with behind it.
    let hypo = scenario.fault.hypocenter();
    let strike = scenario.fault.strike_dir();
    let (mut ahead, mut behind) = (0.0f64, 0.0f64);
    for j in 0..n {
        for i in 0..n {
            let p = [extent * (i as f64 + 0.5) / n as f64, extent * (j as f64 + 0.5) / n as f64];
            let along = (p[0] - hypo[0]) * strike[0] + (p[1] - hypo[1]) * strike[1];
            let r = ((p[0] - hypo[0]).powi(2) + (p[1] - hypo[1]).powi(2)).sqrt();
            if r < extent * 0.12 || r > extent * 0.45 {
                continue; // ring around the epicenter
            }
            if along > 0.6 * r {
                ahead = ahead.max(peak[i + n * j]);
            } else if along < -0.6 * r {
                behind = behind.max(peak[i + n * j]);
            }
        }
    }
    println!(
        "\ndirectivity: peak |v| along strike {:.3e} vs back-azimuth {:.3e} (ratio {:.2})",
        ahead,
        behind,
        ahead / behind.max(1e-30)
    );
    println!("expected shape: ratio > 1 — forward-directivity amplification, as observed in 1994.");
}
