//! Fig 2.3 — the LA Basin model: shear-velocity structure, the adaptive
//! octree mesh that resolves it, and the 64-PE element partition.

use quake_bench::{ascii_heatmap, full_scale, print_table};
use quake_mesh::{
    mesh_from_model, partition_morton, partition_rcb, ExchangePlan, MeshStats, MeshingParams,
};
use quake_model::{LaBasinModel, MaterialModel};
use quake_octree::adapt::{uniform_equivalent_points, AdaptParams};

fn main() {
    let extent = 80_000.0;
    let vs_min = if full_scale() { 150.0 } else { 250.0 };
    let fmax = if full_scale() { 0.2 } else { 0.1 };
    let model = LaBasinModel::standard(vs_min);

    // (a) surface shear-velocity map (the paper's plan view).
    let n = 48;
    let mut vs_map = Vec::with_capacity(n * n);
    for j in 0..n {
        for i in 0..n {
            let x = extent * (i as f64 + 0.5) / n as f64;
            let y = extent * (j as f64 + 0.5) / n as f64;
            vs_map.push(model.sample(x, y, 0.0).vs);
        }
    }
    ascii_heatmap("Fig 2.3a: free-surface shear velocity (m/s)", &vs_map, n, 64);

    // (b) the wavelength-adaptive mesh.
    let mut meshing = MeshingParams::new(extent, fmax);
    meshing.min_level = 3;
    meshing.max_level = if full_scale() { 9 } else { 8 };
    let t0 = std::time::Instant::now();
    let (_tree, mesh) = mesh_from_model(&meshing, &model);
    let stats = MeshStats::compute(&mesh);
    println!(
        "\nFig 2.3b: adaptive mesh for {fmax} Hz ({:.1}s to build)",
        t0.elapsed().as_secs_f64()
    );
    print!("{}", stats.report());
    let adapt = AdaptParams {
        domain_size: extent,
        fmax,
        points_per_wavelength: 10.0,
        max_level: meshing.max_level,
        min_level: meshing.min_level,
    };
    let uniform = uniform_equivalent_points(&adapt, stats.vs_min);
    println!(
        "uniform-grid equivalent: {:.2e} points vs {:.2e} adaptive ({}x saving)",
        uniform as f64,
        stats.n_nodes as f64,
        uniform / stats.n_nodes.max(1) as u128
    );

    // (c) 2-to-1 structure: level histogram already printed; hanging share:
    println!(
        "Fig 2.3c: hanging nodes {} of {} ({:.1}%) — the 2-to-1 interfaces",
        stats.n_hanging,
        stats.n_nodes,
        100.0 * stats.hanging_fraction
    );

    // (d) 64-PE partitions (ParMETIS substitute): Morton vs RCB.
    let centers: Vec<[f64; 3]> = mesh
        .elements
        .iter()
        .map(|e| {
            let lo = mesh.coords[e.nodes[0] as usize];
            [lo[0] + e.h / 2.0, lo[1] + e.h / 2.0, lo[2] + e.h / 2.0]
        })
        .collect();
    let mut rows = Vec::new();
    for (name, parts) in [
        ("Morton SFC", partition_morton(mesh.n_elements(), 64)),
        ("RCB", partition_rcb(&centers, 64)),
    ] {
        let plan = ExchangePlan::build(&mesh, &parts, 64);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", plan.stats.imbalance),
            format!("{}", plan.stats.interface_nodes),
            format!("{}", plan.stats.cut_pairs),
            format!("{}", plan.stats.max_neighbors),
        ]);
    }
    print_table(
        "Fig 2.3d: element partition for 64 PEs",
        &["method", "imbalance", "interface nodes", "cut pairs", "max neighbors"],
        &rows,
    );
}
