//! Kill-and-resume demonstration of the checkpoint/recovery subsystem.
//!
//! Runs the rank-parallel elastic solver three times on a multiresolution
//! mesh (hanging nodes cross the partition boundaries, absorbing boundaries
//! on — the production configuration):
//!
//! 1. **baseline** — an unfaulted `run_distributed`, the ground truth,
//! 2. **kill-and-recover** — the recovery supervisor with a scripted
//!    `FaultPlan::kill` that takes one rank down mid-run. The dead rank's
//!    neighbors observe the failure through the communication fabric (no
//!    barrier, no timeout), the supervisor restores every rank from the last
//!    consistent checkpoint line and relaunches. The run must finish within
//!    **one** retry and reproduce the baseline **bit-identically** on every
//!    node each rank's elements touch,
//! 3. **corrupted-checkpoint** — the newest checkpoint of rank 0 is bit-
//!    flipped on disk; a fresh supervisor run must detect the bad CRC, drop
//!    the whole (now inconsistent) newest restore line, restart from the
//!    previous valid one, and still match the baseline bit-for-bit.
//!
//! Prints a JSON summary to stdout, dumps the supervisor telemetry (restore
//! spans, `recover_attempt` events, skip counters) to
//! `target/BENCH_recover_trace.ndjson`, and exits nonzero if any of the
//! three acceptance checks fails — CI runs this as the `recover` job.

use std::path::PathBuf;

use quake_mesh::hexmesh::{ElemMaterial, HexMesh};
use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};
use quake_parcomm::FaultPlan;
use quake_solver::distributed::run_distributed;
use quake_solver::{
    run_distributed_recoverable, DistConfig, ElasticConfig, ElasticSolver, RecoveryConfig,
};
use quake_telemetry::Registry;

const RANKS: usize = 4;
const STEPS: usize = 12;
const CKPT_EVERY: u64 = 4;
const KILL_RANK: usize = 2;
const KILL_STEP: u64 = 7;

fn build_mesh() -> HexMesh {
    let half = 1u32 << (MAX_LEVEL - 1);
    let mut tree = LinearOctree::build(|o| o.level < 2 || (o.level < 3 && o.x < half));
    tree.balance(BalanceMode::Full);
    HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial { lambda: 2.0, mu: 1.0, rho: 1.0 })
}

fn pulse(mesh: &HexMesh) -> (Vec<f64>, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut u = vec![0.0; 3 * n];
    let v = vec![0.0; 3 * n];
    for (i, c) in mesh.coords.iter().enumerate() {
        let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
        u[3 * i + 1] = (-r2 / 2.0).exp();
    }
    mesh.interpolate_hanging(&mut u, 3);
    (u, v)
}

/// Max |difference| against the baseline on the nodes each rank touches,
/// over raw bit equality: returns the number of mismatched bit patterns.
fn bit_mismatches(
    mesh: &HexMesh,
    baseline: &[(Vec<f64>, Vec<f64>)],
    states: &[(Vec<f64>, Vec<f64>)],
    elements: &[Vec<u32>],
) -> u64 {
    let mut bad = 0u64;
    for (rank, (dp, dn)) in states.iter().enumerate() {
        let (bp, bn) = &baseline[rank];
        let mut touched = vec![false; mesh.n_nodes()];
        for &ei in &elements[rank] {
            for &nd in &mesh.elements[ei as usize].nodes {
                touched[nd as usize] = true;
            }
        }
        for nd in 0..mesh.n_nodes() {
            if !touched[nd] {
                continue;
            }
            for c in 0..3 {
                let i = 3 * nd + c;
                bad += u64::from(dp[i].to_bits() != bp[i].to_bits());
                bad += u64::from(dn[i].to_bits() != bn[i].to_bits());
            }
        }
    }
    bad
}

fn main() {
    let mesh = build_mesh();
    let mut cfg = ElasticConfig::new(1.0);
    cfg.dt = Some(0.05);
    let solver = ElasticSolver::new(&mesh, &cfg);
    let (u0, v0) = pulse(&mesh);

    // Ground truth: the unfaulted distributed run (itself bit-identical to
    // the serial solver).
    let dcfg = DistConfig::new(RANKS, STEPS).with_initial(&u0, &v0);
    let baseline = run_distributed(&solver, &dcfg);

    let ckpt_dir = PathBuf::from("target/bench_recover_ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let rcfg = RecoveryConfig::new(ckpt_dir.clone(), CKPT_EVERY, 3);
    let reg = Registry::new(0);

    // Leg 1: kill a rank mid-run; the supervisor must recover within one
    // retry and match the baseline bit-for-bit.
    let faults = FaultPlan::kill(KILL_RANK, KILL_STEP);
    let run = run_distributed_recoverable(
        &solver,
        &dcfg,
        &rcfg.clone().with_faults(faults.clone()),
        &reg,
    )
    .expect("recoverable run failed");
    let kill_ok = run.finished && run.recoveries <= 1 && run.restored_step > 0;
    let kill_mismatches = bit_mismatches(&mesh, &baseline.states, &run.states, &run.elements);

    // Leg 2: flip one byte in the newest rank-0 checkpoint; a fresh
    // supervisor run must skip the corrupted restore line and still finish
    // bit-identically from the older one.
    let newest = {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&ckpt_dir)
            .expect("checkpoint dir")
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("rank0.")))
            .collect();
        files.sort();
        files.pop().expect("no rank0 checkpoint written")
    };
    let newest_step: u64 = newest
        .file_name()
        .unwrap()
        .to_string_lossy()
        .split('.')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("checkpoint filename carries the step");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).unwrap();

    let reg2 = Registry::new(0);
    let rerun = run_distributed_recoverable(&solver, &dcfg, &rcfg, &reg2)
        .expect("rerun after corruption failed");
    let skipped = reg2.counter("ckpt/skipped_invalid").unwrap_or(0);
    let corrupt_ok = rerun.finished && skipped > 0;
    let corrupt_mismatches =
        bit_mismatches(&mesh, &baseline.states, &rerun.states, &rerun.elements);

    // Telemetry artifact: both supervisors' traces, concatenated.
    std::fs::create_dir_all("target").ok();
    let trace = format!("{}{}", reg.ndjson(), reg2.ndjson());
    std::fs::write("target/BENCH_recover_trace.ndjson", &trace).unwrap();

    println!("{{");
    println!("  \"ranks\": {RANKS}, \"steps\": {STEPS}, \"ckpt_every\": {CKPT_EVERY},");
    println!("  \"kill\": {{ \"rank\": {KILL_RANK}, \"step\": {KILL_STEP},");
    println!(
        "    \"attempts\": {}, \"recoveries\": {}, \"restored_step\": {}, \"bit_mismatches\": {} }},",
        run.attempts, run.recoveries, run.restored_step, kill_mismatches
    );
    println!("  \"corrupt\": {{ \"file\": {:?},", newest.file_name().unwrap());
    println!(
        "    \"restored_step\": {}, \"skipped_invalid\": {}, \"bit_mismatches\": {} }},",
        rerun.restored_step, skipped, corrupt_mismatches
    );
    println!("  \"trace\": \"target/BENCH_recover_trace.ndjson\"");
    println!("}}");

    let mut failures = Vec::new();
    if !kill_ok {
        failures.push(format!(
            "kill leg: finished={} recoveries={} restored_step={}",
            run.finished, run.recoveries, run.restored_step
        ));
    }
    if kill_mismatches != 0 {
        failures.push(format!("kill leg: {kill_mismatches} bit mismatches vs baseline"));
    }
    if !corrupt_ok {
        failures
            .push(format!("corrupt leg: finished={} skipped_invalid={skipped}", rerun.finished));
    }
    if rerun.restored_step >= newest_step {
        failures.push(format!(
            "corrupt leg: restore line did not drop below the corrupted step \
             (restored_step={}, corrupted step {newest_step})",
            rerun.restored_step
        ));
    }
    if corrupt_mismatches != 0 {
        failures.push(format!("corrupt leg: {corrupt_mismatches} bit mismatches vs baseline"));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("recovered within one retry; resumed states bit-identical to the unfaulted run");
}
