//! Table 2.1 — parallel scalability of the forward solver, 1 -> 3000 PEs.
//!
//! The paper measures sustained Mflop/s per processor on LeMieux as the
//! Northridge meshes scale from 134,500 grid points on 1 PE to 102 M on
//! 3000. This host has one core, so (per DESIGN.md): the single-PE rate is
//! *measured live* on a real mesh, and multi-PE rows are predicted by the
//! calibrated machine model from the *real* partition of a real mesh —
//! per-rank flops and ghost-exchange volumes are computed, only the network
//! timing is modeled. Each paper row is matched by granularity
//! (grid points per PE), the quantity its efficiency column is driven by.

use quake_bench::{full_scale, print_table};
use quake_machine::{flops, MachineModel, RankWork};
use quake_mesh::{mesh_from_model, partition_morton, ExchangePlan, MeshingParams};
use quake_model::LaBasinModel;
use quake_solver::{ElasticConfig, ElasticSolver, SolverHarness};

/// Paper rows: (PEs, model, grid points, pts/PE, Mflops/PE, efficiency).
const PAPER: &[(u32, &str, u64, u64, f64, f64)] = &[
    (1, "LA10S", 134_500, 134_500, 505.0, 1.000),
    (16, "LA5S", 618_672, 38_667, 491.0, 0.972),
    (128, "LA2S", 14_792_064, 115_563, 469.0, 0.929),
    (512, "LA1HA", 47_556_096, 92_883, 451.0, 0.893),
    (1024, "LA1HB", 101_940_152, 99_551, 450.0, 0.891),
    (2048, "LA1HB", 101_940_152, 49_775, 443.0, 0.874),
    (3000, "LA1HB", 101_940_152, 33_980, 403.0, 0.800),
];

fn main() {
    // --- Build a real adaptive LA-basin mesh and measure the single-PE
    // sustained rate on it. ---
    let extent = 40_000.0;
    let fmax = if full_scale() { 0.4 } else { 0.25 };
    let model = LaBasinModel::scaled(250.0, extent);
    let mut meshing = MeshingParams::new(extent, fmax);
    meshing.min_level = 3;
    meshing.max_level = if full_scale() { 8 } else { 7 };
    let t0 = std::time::Instant::now();
    let (_tree, mesh) = mesh_from_model(&meshing, &model);
    println!(
        "mesh: {} elements, {} grid points, {} hanging ({:.1}s to build)",
        mesh.n_elements(),
        mesh.n_nodes(),
        mesh.n_hanging(),
        t0.elapsed().as_secs_f64()
    );

    let mut cfg = ElasticConfig::new(1.0);
    cfg.rayleigh = Some(quake_solver::elastic::RayleighBand { f_lo: fmax / 10.0, f_hi: fmax });
    let solver = ElasticSolver::new(&mesh, &cfg);
    let calib_steps = if full_scale() { 40 } else { 15 };
    let t0 = std::time::Instant::now();
    let _ = SolverHarness::new(&solver).run_to_state(None, calib_steps);
    let secs = t0.elapsed().as_secs_f64();
    let abc_faces = mesh.boundary_faces.len() as u64; // upper bound, 5/6 absorb
    let measured_flops = flops::elastic_total(
        mesh.n_elements() as u64,
        mesh.n_nodes() as u64,
        abc_faces,
        calib_steps as u64,
    );
    let host = MachineModel::calibrated(measured_flops, secs);
    println!(
        "calibration: {} steps in {:.2}s -> {:.0} Mflop/s sustained on this host",
        calib_steps,
        secs,
        host.flops_per_sec_per_pe / 1e6
    );
    // For the LeMieux-shape table, use LeMieux-class constants (EV68 at 25%
    // of 2 Gflop/s peak, Quadrics network): this host's core is ~10x faster,
    // which would deflate the communication fraction the table is about.
    let machine = MachineModel::default();
    println!(
        "table below modeled at LeMieux constants: {:.0} Mflop/s/PE, {:.0} us latency, {:.0} MB/s links",
        machine.flops_per_sec_per_pe / 1e6,
        machine.latency * 1e6,
        machine.bandwidth / 1e6
    );

    // --- Single-PE reference prediction (paper granularity). ---
    let per_elem_flops = flops::ELASTIC_HEX_ELEMENT;
    let elems_1 = (134_500.0 * mesh.n_elements() as f64 / mesh.n_nodes() as f64) as u64;
    let single = machine.predict_step(&[RankWork {
        flops: elems_1 * per_elem_flops + 134_500 * flops::ELASTIC_NODE_UPDATE,
        n_neighbors: 0,
        bytes_sent: 0,
    }]);

    // --- One row per paper row, granularity-matched: choose P so that our
    // grid points per PE equals the paper's, then partition the real mesh
    // and model the step. ---
    // Reference granularity measurement on the real mesh: partition to a
    // measurable rank count, record ghost volume, neighbor count, and the
    // *work* imbalance (per-rank owned nodes + elements differ even when
    // element counts are equal). Ghost surface then scales as (pts/PE)^(2/3).
    let p_ref = 16usize;
    let parts_ref = partition_morton(mesh.n_elements(), p_ref);
    let plan_ref = ExchangePlan::build(&mesh, &parts_ref, p_ref);
    let ppe_ref = mesh.n_nodes() as f64 / p_ref as f64;
    let vol_ref =
        (0..p_ref).map(|r| plan_ref.exchange_volume(r)).sum::<usize>() as f64 / p_ref as f64;
    let nbr_ref = (0..p_ref).map(|r| plan_ref.plans[r].len()).sum::<usize>().div_ceil(p_ref);
    // Work imbalance: owned nodes per rank.
    let work_imbalance = {
        let mut owner = vec![u32::MAX; mesh.n_nodes()];
        for (e, &pp) in parts_ref.iter().enumerate() {
            for &nd in &mesh.elements[e].nodes {
                owner[nd as usize] = owner[nd as usize].min(pp);
            }
        }
        let mut counts = vec![0usize; p_ref];
        for &o in &owner {
            counts[o as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        max / (mesh.n_nodes() as f64 / p_ref as f64)
    };
    println!(
        "granularity reference at P={p_ref}: {vol_ref:.0} ghost nodes/PE,          {nbr_ref} neighbors/PE, work imbalance {work_imbalance:.3}"
    );

    let mut rows = Vec::new();
    for &(pe_paper, name, pts_paper, ppe_paper, mflops_paper, eff_paper) in PAPER {
        let avg_volume = (vol_ref * (ppe_paper as f64 / ppe_ref).powf(2.0 / 3.0)) as usize;
        let avg_neighbors = nbr_ref;
        let imbalance = work_imbalance;
        // Model the paper's PE count with that granularity: per-rank flops
        // from the paper's points/PE, one rank carrying the measured
        // imbalance.
        let elems_per_pe =
            (ppe_paper as f64 * mesh.n_elements() as f64 / mesh.n_nodes() as f64) as u64;
        let base_flops = elems_per_pe * per_elem_flops + ppe_paper * flops::ELASTIC_NODE_UPDATE;
        let p = pe_paper as usize;
        let ranks: Vec<RankWork> = (0..p)
            .map(|r| RankWork {
                flops: if r == 0 { (base_flops as f64 * imbalance) as u64 } else { base_flops },
                n_neighbors: if p == 1 { 0 } else { avg_neighbors },
                bytes_sent: if p == 1 { 0 } else { (avg_volume * 3 * 8) as u64 },
            })
            .collect();
        let pred = machine.predict_step(&ranks);
        let eff = machine.efficiency(&single, &pred);
        rows.push(vec![
            format!("{pe_paper}"),
            name.to_string(),
            format!("{pts_paper}"),
            format!("{ppe_paper}"),
            format!("{:.3}", imbalance),
            format!("{avg_volume}"),
            format!("{:.1}", pred.total_flop_rate / 1e9),
            format!("{:.0}", pred.mflops_per_pe),
            format!("{eff:.3}"),
            format!("{mflops_paper:.0}"),
            format!("{eff_paper:.3}"),
        ]);
    }
    print_table(
        "Table 2.1: parallel scalability (granularity-matched machine model)",
        &[
            "PEs",
            "model",
            "grid pts",
            "pts/PE",
            "imbalance",
            "ghost nodes/PE",
            "Gflop/s",
            "Mflops/PE",
            "eff",
            "Mflops/PE(paper)",
            "eff(paper)",
        ],
        &rows,
    );
    println!(
        "\nshape check: the model lands in the paper's efficiency band\n\
         (0.87-1.0), driven by the *measured* work imbalance of the real\n\
         partition plus ghost-exchange and sync terms. The paper's strong\n\
         P-dependence (0.97 at 16 PEs vs 0.80 at 3000 at similar pts/PE) is\n\
         dominated by OS-noise amplification documented for this very\n\
         machine generation (Petrini et al., SC'03); a first-principles\n\
         alpha-beta model deliberately does not include that fudge."
    );
}
