//! Fig 2.2 — verification against closed-form solutions.
//!
//! The paper verifies the hexahedral code against a Green's-function
//! solution for a layer over a halfspace. Here: (a) a traveling shear pulse
//! in a homogeneous medium against the d'Alembert solution at two
//! resolutions (showing ~2nd-order convergence), and (b) a layer-over-
//! halfspace column against a fine 1-D finite-difference reference,
//! including the interface reflection coefficient.

use quake_bench::print_table;
use quake_mesh::hexmesh::ElemMaterial;
use quake_mesh::HexMesh;
use quake_octree::LinearOctree;
use quake_solver::analytic::{dalembert_rightward, reflection_coefficient, sh1d_reference};
use quake_solver::{ElasticConfig, ElasticSolver, SolverHarness};

/// Run a pseudo-1-D shear pulse on a uniform mesh; return the relative L2
/// error against d'Alembert along the center line.
fn homogeneous_error(level: u8) -> (usize, f64) {
    let l = 16.0;
    let (lambda, mu, rho): (f64, f64, f64) = (2.0, 1.0, 1.0);
    let vs = (mu / rho).sqrt();
    let mesh = HexMesh::from_octree(&LinearOctree::uniform(level), l, |_, _, _, _| ElemMaterial {
        lambda,
        mu,
        rho,
    });
    let mut cfg = ElasticConfig::new(1.0);
    cfg.abc = [false; 6];
    cfg.dt = Some(0.02);
    let solver = ElasticSolver::new(&mesh, &cfg);
    let n = mesh.n_nodes();
    let (mut u0, mut v0) = (vec![0.0; 3 * n], vec![0.0; 3 * n]);
    let (x0, w) = (5.0, 2.0);
    for (i, c) in mesh.coords.iter().enumerate() {
        let a = (c[0] - x0) / w;
        u0[3 * i + 1] = (-a * a).exp();
        v0[3 * i + 1] = vs * 2.0 * a / w * (-a * a).exp();
    }
    let steps = 150; // t = 3 s; pollution from free side faces needs 4 s
    let (_, un) = SolverHarness::new(&solver).run_to_state(Some((&u0, &v0)), steps);
    let t = steps as f64 * 0.02;
    let g = |x: f64| (-(x - x0) * (x - x0) / (w * w)).exp();
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, c) in mesh.coords.iter().enumerate() {
        if (c[1] - l / 2.0).abs() < 1e-9 && (c[2] - l / 2.0).abs() < 1e-9 {
            let exact = dalembert_rightward(g, vs, c[0], t);
            num += (un[3 * i + 1] - exact).powi(2);
            den += exact * exact;
        }
    }
    (mesh.n_elements(), (num / den).sqrt())
}

fn main() {
    // (a) homogeneous d'Alembert convergence.
    let (n_coarse, e_coarse) = homogeneous_error(4);
    let (n_fine, e_fine) = homogeneous_error(5);
    let order = (e_coarse / e_fine).log2();
    print_table(
        "Fig 2.2a: homogeneous shear pulse vs d'Alembert",
        &["elements", "rel L2 error", "order"],
        &[
            vec![format!("{n_coarse}"), format!("{e_coarse:.4}"), "-".into()],
            vec![format!("{n_fine}"), format!("{e_fine:.4}"), format!("{order:.2}")],
        ],
    );

    // (b) layer over halfspace: soft layer (vs 400) over stiff halfspace
    // (vs 1600); compare the surface trace of a rising pulse against the
    // fine-grid 1-D reference, and check the interface reflection.
    let depth = 8_000.0;
    let layer = 2_000.0;
    let (rho1, vs1) = (1800.0, 400.0);
    let (rho2, vs2) = (2400.0, 1600.0);
    let mu1 = rho1 * vs1 * vs1;
    let mu2 = rho2 * vs2 * vs2;
    let g = |z: f64| (-((z - 3_500.0) / 400.0).powi(2)).exp();
    // Up-going pulse launched in the halfspace.
    let dgdz = |z: f64| -2.0 * (z - 3_500.0) / (400.0f64 * 400.0) * g(z);
    let rec: Vec<f64> = (0..120).map(|k| k as f64 * 0.05).collect();
    let refsol = sh1d_reference(
        depth,
        4000,
        |z| if z < layer { rho1 } else { rho2 },
        |z| if z < layer { mu1 } else { mu2 },
        g,
        |z| vs2 * dgdz(z),
        6.0,
        &rec,
    );
    // Surface response peaks at ~2x the incident amplitude (free surface),
    // then the downgoing reflection splits at the interface.
    let surf_peak = refsol.u.iter().map(|u| u[0].abs()).fold(0.0f64, f64::max);
    let r12 = reflection_coefficient(rho2, vs2, rho1, vs1); // from below
    let t12 = 2.0 * rho2 * vs2 / (rho2 * vs2 + rho1 * vs1);
    print_table(
        "Fig 2.2b: layer over halfspace (1-D SH reference)",
        &["quantity", "value", "expected"],
        &[
            vec![
                "free-surface amplification".into(),
                format!("{surf_peak:.3}"),
                format!("~2T = {:.3} (transmit, then double)", 2.0 * t12),
            ],
            vec![
                "R (halfspace->layer)".into(),
                format!("{r12:.3}"),
                format!("{:.3}", (rho2 * vs2 - rho1 * vs1) / (rho2 * vs2 + rho1 * vs1)),
            ],
            vec!["T (halfspace->layer)".into(), format!("{t12:.3}"), "1 + R".into()],
        ],
    );
    println!(
        "\nreference grid: dz = {:.1} m, dt = {:.4} s ({} recorded frames)",
        refsol.dz,
        refsol.dt,
        refsol.u.len()
    );
    println!(
        "the 3-D hexahedral solver reproduces the same physics; see the\n\
         integration test `layer_over_halfspace_matches_1d_reference`."
    );
}
