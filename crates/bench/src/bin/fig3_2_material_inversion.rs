//! Fig 3.2 — multiscale material inversion of the 2-D basin cross-section.
//!
//! The paper inverts the shear-velocity section of the LA basin from 5%-
//! noisy synthetic surface records, via grid continuation 1x1 -> 257x257,
//! with 64 receivers (and a degraded 16-receiver comparison), judging the
//! result also by the waveform at a *non-receiver* location. Scaled here:
//! the same cascade on a smaller section, the same two receiver counts.

use quake_bench::{ascii_heatmap, full_scale, print_table, rel_l2};
use quake_inverse::{invert_multiscale, GnConfig, MaterialMap, MultiscaleConfig};
use quake_solver::wave::{forward, ScalarWaveEq};

fn main() {
    let (nx, nz, steps) = if full_scale() { (70, 40, 400) } else { (42, 24, 220) };
    let grids: Vec<[usize; 3]> = if full_scale() {
        vec![[2, 2, 1], [3, 3, 1], [5, 4, 1], [9, 6, 1], [17, 11, 1], [33, 21, 1]]
    } else {
        vec![[2, 2, 1], [3, 3, 1], [5, 4, 1], [9, 6, 1], [13, 9, 1]]
    };

    for &n_rec in &[64usize, 16] {
        let sc = quake_core::material_scenario(nx, nz, steps, n_rec, 0.05, 20030 + n_rec as u64);
        let base = sc.mu_background[0];
        let cfg = MultiscaleConfig {
            grids: grids.clone(),
            domain: sc.domain,
            tv_eps: 0.02 * base / 2000.0,
            tv_beta: 1e-26,
            per_level: GnConfig {
                max_gn_iters: 15,
                max_cg_iters: 40,
                grad_tol: 1e-2,
                barrier: Some((0.05 * base, 1e-7)),
                ..GnConfig::default()
            },
            freq_schedule: None,
        };
        let forcing = sc.forcing();
        let t0 = std::time::Instant::now();
        let (m, levels) =
            invert_multiscale(&sc.solver, &forcing, &sc.data, &sc.centers, base, &cfg);
        let secs = t0.elapsed().as_secs_f64();

        // Per-level convergence (the cascade frames of Fig 3.2a).
        let rows: Vec<Vec<String>> = levels
            .iter()
            .map(|l| {
                vec![
                    format!("{}x{}", l.dims[0], l.dims[1]),
                    format!("{}", l.stats.gn_iters),
                    format!("{}", l.stats.cg_iters_total),
                    format!("{:.3e}", l.stats.misfit_history.last().copied().unwrap_or(0.0)),
                ]
            })
            .collect();
        print_table(
            &format!("Fig 3.2: multiscale cascade, {n_rec} receivers ({secs:.0}s)"),
            &["grid", "GN iters", "CG iters", "final misfit"],
            &rows,
        );

        // Compare recovered vs target *element* shear velocity.
        let dims = *grids.last().unwrap();
        let map = MaterialMap::new(&sc.centers, sc.domain, dims);
        let mu_inv = map.interpolate(&m);
        let vs_inv: Vec<f64> = mu_inv.iter().map(|&mu| (mu / sc.section.rho).sqrt()).collect();
        let vs_true: Vec<f64> = sc.mu_true.iter().map(|&mu| (mu / sc.section.rho).sqrt()).collect();
        println!("relative L2 error of recovered vs field: {:.3}", rel_l2(&vs_inv, &vs_true));
        if n_rec == 64 {
            ascii_heatmap("target vs (m/s)", &vs_true, nx, 70);
            ascii_heatmap("inverted vs (m/s)", &vs_inv, nx, 70);
        }

        // Waveform check at a NON-receiver surface location (Fig 3.2b).
        let probe = {
            // Halfway between two receivers.
            let r = sc.solver.receivers();
            (r[r.len() / 3] + r[r.len() / 3 + 1]) / 2
        };
        let mut probe_solver = sc.solver.cfg.clone();
        probe_solver.receivers = vec![probe];
        let ps = quake_antiplane::ShSolver::new(&probe_solver);
        let dt = ps.dt();
        let tr = |mu: &[f64]| {
            forward(&ps, mu, &mut |k, f| sc.fault.add_force(k as f64 * dt, f), false).traces[0]
                .clone()
        };
        let t_true = tr(&sc.mu_true);
        let t_guess = tr(&sc.mu_background);
        let t_inv = tr(&mu_inv);
        println!(
            "non-receiver trace misfit: initial guess {:.3}, inverted {:.3} (rel L2 vs target)",
            rel_l2(&t_guess, &t_true),
            rel_l2(&t_inv, &t_true)
        );
    }
    println!(
        "\nexpected shape (paper): the cascade sharpens the image level by\n\
         level; 16 receivers recover a blurrier but still faithful model;\n\
         the non-receiver waveform of the inverted model stays close to the\n\
         target's."
    );
}
