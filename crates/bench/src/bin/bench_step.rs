//! Step-kernel throughput benchmark: fused hot path vs the frozen reference,
//! plus the telemetry-derived per-phase breakdown.
//!
//! Times the explicit elastic step on a fixed multiresolution mesh with
//! Rayleigh damping and absorbing boundaries — the configuration where the
//! fused two-vector matvec matters — and reports steps/sec and
//! element-updates/sec for:
//!
//! - `baseline`: `quake_solver::reference::reference_step`, the frozen
//!   pre-optimization step (row-wise matvec, two passes per damped element,
//!   per-step allocations, interleaved nodal layout),
//! - `fused`: `ElasticSolver::step_with` with a plain (telemetry-disabled)
//!   workspace — the planar (structure-of-arrays) state, per-class stiffness
//!   templates and the blocked color sweep, zero steady-state allocations.
//!   With `--features parallel` the element sweep inside it may run threaded
//!   over the node-disjoint coloring; the JSON records which variant ran.
//! - `serial`: `ElasticSolver::step_with_serial`, the same kernel with the
//!   threaded sweep forced off — `fused` vs `serial` decomposes the speedup
//!   into layout/template gains vs threading.
//! - `instrumented`: the same fused step with a live `quake-telemetry`
//!   registry, which must cost (nearly) nothing — pass
//!   `--check-overhead <pct>` (CI uses 3) to fail the run if the slowdown
//!   relative to `fused` exceeds that percentage. Reported overheads are
//!   best-of-trials per variant and clamped at zero: independently-noisy
//!   minima can make the instrumented run beat `fused` by luck, and a
//!   negative overhead is measurement noise, not a real speedup. The raw
//!   (unclamped) values are reported next to the clamped ones so dashboards
//!   can see the noise floor; the gate uses the clamped values.
//! - `traced`: the instrumented step with the flight recorder attached
//!   (65536-event ring); `--check-overhead` also gates its slowdown relative
//!   to `instrumented` (the trace-disabled twin). `--trace-out <path>`
//!   writes the final traced trial's ring as a Chrome `trace_event` JSON,
//!   loadable in Perfetto or chrome://tracing.
//!
//! Pass `--check-throughput <eups>` to fail the run if the fused kernel's
//! element-updates/s falls below the floor — the CI regression gate.
//!
//! The instrumented run's span times, joined with `quake-machine`'s analytic
//! flop/byte counts, yield the per-phase table printed at the end (wall time,
//! share of the step, sustained rate, arithmetic intensity and roofline
//! efficiency against the paper's LeMieux-like `MachineModel::default()`).
//!
//! Outputs: the full run writes `BENCH_step_throughput.json` and
//! `BENCH_phase_breakdown.json` at the repo root; `--smoke` (CI) runs a tiny
//! mesh in milliseconds and prints both JSONs to stdout instead. Both modes
//! dump the instrumented registry's NDJSON trace to
//! `target/BENCH_step_trace.ndjson`.

use std::time::Instant;

use quake_machine::{bytes, MachineModel};
use quake_mesh::hexmesh::{ElemMaterial, HexMesh};
use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};
use quake_solver::elastic::RayleighBand;
use quake_solver::reference::reference_step;
use quake_solver::{
    ElasticConfig, ElasticSolver, NoExchange, NoopHook, RunConfig, RunOutcome, SolverHarness,
};

/// Multiresolution mesh: uniform `coarse` level with the x < 1/2 half refined
/// one level deeper, 2:1 balanced — hanging nodes cross the interface.
fn build_mesh(coarse: u8) -> HexMesh {
    let half = 1u32 << (MAX_LEVEL - 1);
    let fine = coarse + 1;
    let mut tree = LinearOctree::build(|o| o.level < coarse || (o.level < fine && o.x < half));
    tree.balance(BalanceMode::Full);
    HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial { lambda: 2.0, mu: 1.0, rho: 1.0 })
}

fn shear_pulse(mesh: &HexMesh) -> Vec<f64> {
    let mut u = vec![0.0; 3 * mesh.n_nodes()];
    for (i, c) in mesh.coords.iter().enumerate() {
        let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
        u[3 * i + 1] = (-r2 / 2.0).exp();
    }
    mesh.interpolate_hanging(&mut u, 3);
    u
}

/// Best-of-`trials` throughput of `n_steps` leapfrog steps of `step`;
/// `before_trial` runs outside the timed region (e.g. a registry reset).
fn time_stepper(
    mesh: &HexMesh,
    u0: &[f64],
    n_steps: usize,
    trials: usize,
    mut before_trial: impl FnMut(),
    mut step: impl FnMut(&[f64], &[f64], &[f64], &mut [f64]),
) -> (f64, f64) {
    let ndof = 3 * mesh.n_nodes();
    let f = vec![0.0; ndof];
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let mut up = u0.to_vec();
        let mut un = u0.to_vec();
        let mut next = vec![0.0; ndof];
        before_trial();
        let t = Instant::now();
        for _ in 0..n_steps {
            step(&up, &un, &f, &mut next);
            std::mem::swap(&mut up, &mut un);
            std::mem::swap(&mut un, &mut next);
        }
        best = best.min(t.elapsed().as_secs_f64());
        assert!(un.iter().all(|v| v.is_finite()), "stepper diverged");
    }
    let steps_per_sec = n_steps as f64 / best;
    (steps_per_sec, steps_per_sec * mesh.n_elements() as f64)
}

struct PhaseRow {
    name: &'static str,
    secs: f64,
    share: f64,
    flops: u64,
    bytes: u64,
    intensity: f64,
    flops_per_sec: f64,
    roofline_efficiency: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_overhead: Option<f64> = args
        .iter()
        .position(|a| a == "--check-overhead")
        .map(|i| args[i + 1].parse().expect("--check-overhead takes a percentage"));
    let check_throughput: Option<f64> = args
        .iter()
        .position(|a| a == "--check-throughput")
        .map(|i| args[i + 1].parse().expect("--check-throughput takes element-updates/s"));
    let trace_out: Option<String> =
        args.iter().position(|a| a == "--trace-out").map(|i| args[i + 1].clone());
    // The smoke mesh must be big enough that a step dwarfs the fixed span
    // cost, or the overhead check would measure timer noise instead.
    let (coarse, base_steps, trials) = if smoke { (3, 4, 1) } else { (4, 20, 3) };
    // The fused/instrumented comparison needs more samples than the slow
    // baseline to resolve a few-percent overhead above timer noise.
    let (ov_steps, ov_trials) = if smoke { (30, 5) } else { (base_steps, trials) };

    let mesh = build_mesh(coarse);
    let mut cfg = ElasticConfig::new(1.0);
    cfg.dt = Some(if smoke { 0.05 } else { 0.01 });
    cfg.abc = [true, true, true, true, false, true];
    cfg.rayleigh = Some(RayleighBand { f_lo: 0.05, f_hi: 2.0 });
    let solver = ElasticSolver::new(&mesh, &cfg);
    let u0 = shear_pulse(&mesh);
    println!(
        "mesh: {} elements / {} nodes ({} hanging), dt = {}, {} steps x {} trials",
        mesh.n_elements(),
        mesh.n_nodes(),
        mesh.n_hanging(),
        solver.dt,
        base_steps,
        trials
    );

    let (base_sps, base_eups) = time_stepper(
        &mesh,
        &u0,
        base_steps,
        trials,
        || {},
        |up, un, f, next| {
            reference_step(&solver, up, un, f, next);
        },
    );
    println!("baseline     : {base_sps:>8.2} steps/s  {base_eups:>12.3e} element-updates/s");

    // The fused step runs on the planar layout; the conversion is an exact
    // permutation, outside the timed region.
    let u0p = quake_solver::layout::to_planar3(&u0);
    let mut ws = solver.workspace();
    let (fused_sps, fused_eups) = time_stepper(
        &mesh,
        &u0p,
        ov_steps,
        ov_trials,
        || {},
        |up, un, f, next| {
            solver.step_with(up, un, f, next, &mut ws);
        },
    );
    println!("fused        : {fused_sps:>8.2} steps/s  {fused_eups:>12.3e} element-updates/s");

    // Same kernel with the threaded sweep forced off: fused vs serial
    // decomposes the speedup into layout/template gains vs threading.
    let (serial_sps, serial_eups) = time_stepper(
        &mesh,
        &u0p,
        ov_steps,
        ov_trials,
        || {},
        |up, un, f, next| {
            solver.step_with_serial(up, un, f, next, &mut ws);
        },
    );
    println!("serial       : {serial_sps:>8.2} steps/s  {serial_eups:>12.3e} element-updates/s");

    // Same hot path with a live registry; reset per trial so the final trial's
    // span statistics are exactly one `ov_steps`-step run.
    let mut iws = solver.workspace_instrumented(0);
    let (instr_sps, instr_eups) = {
        let iws_cell = std::cell::RefCell::new(&mut iws);
        time_stepper(
            &mesh,
            &u0p,
            ov_steps,
            ov_trials,
            || iws_cell.borrow().reg.reset(),
            |up, un, f, next| solver.step_with(up, un, f, next, &mut iws_cell.borrow_mut()),
        )
    };
    // Clamp at zero for the gate: best-of-trials minima are independently
    // noisy, so the instrumented run can beat `fused` by luck; a negative
    // overhead is noise, not a speedup. The raw (unclamped) value is
    // reported alongside so trend dashboards see the noise floor.
    let overhead_raw_pct = (fused_sps / instr_sps - 1.0) * 100.0;
    let overhead_pct = overhead_raw_pct.max(0.0);
    println!(
        "instrumented : {instr_sps:>8.2} steps/s  {instr_eups:>12.3e} element-updates/s  \
         (telemetry overhead {overhead_pct:+.2}%, raw {overhead_raw_pct:+.2}%)"
    );

    // Same instrumented hot path with the flight recorder attached: the ring
    // push per span exit must stay inside the same overhead budget as the
    // aggregate telemetry itself (gated vs `instrumented`, the
    // trace-disabled twin).
    let treg = quake_telemetry::Registry::new(0);
    treg.enable_trace(65536);
    let mut tws = solver.workspace_with(treg);
    let (traced_sps, _) = {
        let tws_cell = std::cell::RefCell::new(&mut tws);
        time_stepper(
            &mesh,
            &u0p,
            ov_steps,
            ov_trials,
            || tws_cell.borrow().reg.reset(),
            |up, un, f, next| solver.step_with(up, un, f, next, &mut tws_cell.borrow_mut()),
        )
    };
    let trace_overhead_raw_pct = (instr_sps / traced_sps - 1.0) * 100.0;
    let trace_overhead_pct = trace_overhead_raw_pct.max(0.0);
    println!(
        "traced       : {traced_sps:>8.2} steps/s  (flight-recorder overhead \
         {trace_overhead_pct:+.2}%, raw {trace_overhead_raw_pct:+.2}%)"
    );

    // The canonical harness loop with a single no-op hook and no exchange —
    // the hook dispatch must cost (nearly) nothing over the raw fused loop.
    let harness = SolverHarness::new(&solver);
    let v0 = vec![0.0; 3 * mesh.n_nodes()];
    let mut hws = solver.workspace();
    let mut harness_best = f64::INFINITY;
    for _ in 0..ov_trials {
        let mut state = solver.initial_state(0, Some((&u0, &v0)));
        let run_cfg = RunConfig::to_step(ov_steps as u64);
        let mut noop = NoopHook;
        let t = Instant::now();
        let outcome =
            harness.run(&run_cfg, &mut state, &mut hws, &mut NoExchange, &mut [&mut noop]);
        harness_best = harness_best.min(t.elapsed().as_secs_f64());
        assert!(matches!(outcome, RunOutcome::Finished { .. }), "harness run stopped early");
        assert!(state.u_now.iter().all(|v| v.is_finite()), "harness stepper diverged");
    }
    let harness_sps = ov_steps as f64 / harness_best;
    let harness_eups = harness_sps * mesh.n_elements() as f64;
    let harness_overhead_raw_pct = (fused_sps / harness_sps - 1.0) * 100.0;
    let harness_overhead_pct = harness_overhead_raw_pct.max(0.0);
    println!(
        "harness      : {harness_sps:>8.2} steps/s  {harness_eups:>12.3e} element-updates/s  \
         (no-op-hook overhead {harness_overhead_pct:+.2}%, raw {harness_overhead_raw_pct:+.2}%)"
    );

    let speedup = fused_eups / base_eups;
    println!("speedup      : {speedup:.2}x element-updates/s (fused vs baseline)");
    let parallel = cfg!(feature = "parallel");

    // ---- per-phase breakdown from the instrumented registry ----

    let steps_recorded = {
        let reg = &iws.reg;
        let n = reg.span_stats("step").expect("step span").count;
        solver.record_step_costs(solver.full_scope(), n, reg);
        n
    };
    let reg = iws.into_registry();
    let machine = MachineModel::default();
    let step_secs = reg.span_stats("step").unwrap().total_secs();
    let mut rows: Vec<PhaseRow> = Vec::new();
    for name in ["fill", "elements", "abc", "fold", "exchange", "tail", "interp"] {
        let s = reg
            .span_stats(&format!("step/{name}"))
            .unwrap_or_else(|| panic!("missing span step/{name}"));
        assert_eq!(s.count, steps_recorded, "phase {name} must run once per step");
        let flops = reg.counter(&format!("step/{name}/flops")).unwrap();
        let bytes_moved = reg.counter(&format!("step/{name}/bytes")).unwrap();
        let secs = s.total_secs();
        let intensity =
            if bytes_moved == 0 { 0.0 } else { bytes::arithmetic_intensity(flops, bytes_moved) };
        let flops_per_sec = if secs > 0.0 { flops as f64 / secs } else { 0.0 };
        let roofline_efficiency =
            if flops == 0 { 0.0 } else { machine.roofline_efficiency(flops_per_sec, intensity) };
        rows.push(PhaseRow {
            name,
            secs,
            share: secs / step_secs,
            flops,
            bytes: bytes_moved,
            intensity,
            flops_per_sec,
            roofline_efficiency,
        });
    }
    let phase_sum: f64 = rows.iter().map(|r| r.secs).sum();

    println!(
        "\nper-phase breakdown ({steps_recorded} steps; roofline vs the paper's \
         LeMieux-like default machine):"
    );
    println!(
        "{:<10} {:>9} {:>7} {:>10} {:>10} {:>9}",
        "phase", "ms", "share", "Gflop/s", "flop/byte", "roofline"
    );
    for r in &rows {
        println!(
            "{:<10} {:>9.3} {:>6.1}% {:>10.3} {:>10.3} {:>8.1}%",
            r.name,
            r.secs * 1e3,
            r.share * 100.0,
            r.flops_per_sec / 1e9,
            r.intensity,
            r.roofline_efficiency * 100.0
        );
    }
    println!(
        "{:<10} {:>9.3} {:>6.1}%   (step total {:.3} ms)",
        "sum",
        phase_sum * 1e3,
        phase_sum / step_secs * 100.0,
        step_secs * 1e3
    );

    let mut breakdown = String::new();
    breakdown.push_str("{\n");
    breakdown.push_str(&format!("  \"mesh_elements\": {},\n", mesh.n_elements()));
    breakdown.push_str(&format!("  \"mesh_nodes\": {},\n", mesh.n_nodes()));
    breakdown.push_str(&format!("  \"n_steps\": {steps_recorded},\n"));
    breakdown.push_str(&format!("  \"step_total_secs\": {step_secs:.6},\n"));
    breakdown.push_str(&format!("  \"phase_sum_secs\": {phase_sum:.6},\n"));
    breakdown.push_str(&format!("  \"telemetry_overhead_pct\": {overhead_pct:.3},\n"));
    breakdown.push_str(&format!("  \"parallel_sweep\": {parallel},\n"));
    breakdown.push_str("  \"phases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        breakdown.push_str(&format!(
            "    {{ \"name\": \"{}\", \"secs\": {:.6}, \"share\": {:.4}, \"flops\": {}, \
             \"bytes\": {}, \"intensity\": {:.4}, \"flops_per_sec\": {:.1}, \
             \"roofline_efficiency\": {:.4} }}{}\n",
            r.name,
            r.secs,
            r.share,
            r.flops,
            r.bytes,
            r.intensity,
            r.flops_per_sec,
            r.roofline_efficiency,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    breakdown.push_str("  ]\n}\n");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"mesh_elements\": {},\n", mesh.n_elements()));
    json.push_str(&format!("  \"mesh_nodes\": {},\n", mesh.n_nodes()));
    json.push_str(&format!("  \"hanging_nodes\": {},\n", mesh.n_hanging()));
    json.push_str(&format!("  \"n_steps\": {base_steps},\n  \"trials\": {trials},\n"));
    json.push_str(&format!(
        "  \"baseline\": {{ \"steps_per_sec\": {base_sps:.3}, \"element_updates_per_sec\": {base_eups:.1} }},\n"
    ));
    json.push_str(&format!(
        "  \"fused\": {{ \"steps_per_sec\": {fused_sps:.3}, \"element_updates_per_sec\": {fused_eups:.1}, \"parallel_sweep\": {parallel} }},\n"
    ));
    json.push_str(&format!(
        "  \"serial\": {{ \"steps_per_sec\": {serial_sps:.3}, \"element_updates_per_sec\": {serial_eups:.1} }},\n"
    ));
    json.push_str(&format!(
        "  \"instrumented\": {{ \"steps_per_sec\": {instr_sps:.3}, \"telemetry_overhead_pct\": {overhead_pct:.3}, \"telemetry_overhead_raw_pct\": {overhead_raw_pct:.3} }},\n"
    ));
    json.push_str(&format!(
        "  \"traced\": {{ \"steps_per_sec\": {traced_sps:.3}, \"trace_overhead_pct\": {trace_overhead_pct:.3}, \"trace_overhead_raw_pct\": {trace_overhead_raw_pct:.3} }},\n"
    ));
    json.push_str(&format!(
        "  \"harness\": {{ \"steps_per_sec\": {harness_sps:.3}, \"noop_hook_overhead_pct\": {harness_overhead_pct:.3}, \"noop_hook_overhead_raw_pct\": {harness_overhead_raw_pct:.3} }},\n"
    ));
    json.push_str(&format!("  \"speedup_fused_vs_baseline\": {speedup:.3}\n}}\n"));

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let trace_path = format!("{root}/target/BENCH_step_trace.ndjson");
    let _ = std::fs::create_dir_all(format!("{root}/target"));
    std::fs::write(&trace_path, reg.ndjson()).expect("write NDJSON trace");
    println!("\nwrote {trace_path}");
    if let Some(path) = &trace_out {
        // The traced leg's final trial, as a Chrome trace_event JSON —
        // loadable in Perfetto / chrome://tracing.
        let buf = tws.reg.trace_buffer();
        std::fs::write(path, quake_telemetry::json::chrome_trace(&[buf]))
            .expect("write Chrome trace");
        println!("wrote {path}");
    }
    if smoke {
        println!("\n{json}");
        println!("{breakdown}");
        println!("smoke mode: committed JSONs not written");
    } else {
        let tp = format!("{root}/BENCH_step_throughput.json");
        let bp = format!("{root}/BENCH_phase_breakdown.json");
        std::fs::write(&tp, &json).expect("write BENCH_step_throughput.json");
        std::fs::write(&bp, &breakdown).expect("write BENCH_phase_breakdown.json");
        println!("wrote {tp}\nwrote {bp}");
    }

    assert!(
        phase_sum >= 0.95 * step_secs,
        "phase spans cover only {:.1}% of the step span — untracked time in the hot path",
        phase_sum / step_secs * 100.0
    );
    if let Some(limit) = check_overhead {
        assert!(
            overhead_pct <= limit,
            "telemetry overhead {overhead_pct:.2}% exceeds the {limit}% budget"
        );
        assert!(
            harness_overhead_pct <= limit,
            "harness no-op-hook overhead {harness_overhead_pct:.2}% exceeds the {limit}% budget"
        );
        assert!(
            trace_overhead_pct <= limit,
            "flight-recorder overhead {trace_overhead_pct:.2}% exceeds the {limit}% budget"
        );
    }
    assert!(
        speedup >= if smoke { 0.5 } else { 1.3 },
        "fused step regressed below the 1.3x acceptance bar: {speedup:.2}x"
    );
    if let Some(floor) = check_throughput {
        assert!(
            fused_eups >= floor,
            "fused kernel throughput {fused_eups:.3e} element-updates/s is below the \
             {floor:.3e} regression floor"
        );
    }
}
