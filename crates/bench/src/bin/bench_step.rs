//! Step-kernel throughput benchmark: fused hot path vs the frozen reference.
//!
//! Times the explicit elastic step on a fixed multiresolution mesh with
//! Rayleigh damping and absorbing boundaries — the configuration where the
//! fused two-vector matvec matters — and reports steps/sec and
//! element-updates/sec for:
//!
//! - `baseline`: `quake_solver::reference::reference_step`, the frozen
//!   pre-optimization step (row-wise matvec, two passes per damped element,
//!   per-step allocations),
//! - `fused`: `ElasticSolver::step_with` (blocked `elastic_matvec2`,
//!   preallocated workspace, zero steady-state allocations). With
//!   `--features parallel` the element sweep inside it runs threaded over
//!   the node-disjoint coloring; the JSON records which variant ran.
//!
//! The full run writes `BENCH_step_throughput.json` at the repo root; pass
//! `--smoke` (CI) to run a tiny mesh in milliseconds and print the JSON to
//! stdout without touching the committed file.

use std::time::Instant;

use quake_mesh::hexmesh::{ElemMaterial, HexMesh};
use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};
use quake_solver::elastic::RayleighBand;
use quake_solver::reference::reference_step;
use quake_solver::{ElasticConfig, ElasticSolver};

/// Multiresolution mesh: uniform `coarse` level with the x < 1/2 half refined
/// one level deeper, 2:1 balanced — hanging nodes cross the interface.
fn build_mesh(coarse: u8) -> HexMesh {
    let half = 1u32 << (MAX_LEVEL - 1);
    let fine = coarse + 1;
    let mut tree = LinearOctree::build(|o| o.level < coarse || (o.level < fine && o.x < half));
    tree.balance(BalanceMode::Full);
    HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial { lambda: 2.0, mu: 1.0, rho: 1.0 })
}

fn shear_pulse(mesh: &HexMesh) -> Vec<f64> {
    let mut u = vec![0.0; 3 * mesh.n_nodes()];
    for (i, c) in mesh.coords.iter().enumerate() {
        let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
        u[3 * i + 1] = (-r2 / 2.0).exp();
    }
    mesh.interpolate_hanging(&mut u, 3);
    u
}

/// Best-of-`trials` throughput of `n_steps` leapfrog steps of `step`.
fn time_stepper(
    mesh: &HexMesh,
    u0: &[f64],
    n_steps: usize,
    trials: usize,
    mut step: impl FnMut(&[f64], &[f64], &[f64], &mut [f64]),
) -> (f64, f64) {
    let ndof = 3 * mesh.n_nodes();
    let f = vec![0.0; ndof];
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let mut up = u0.to_vec();
        let mut un = u0.to_vec();
        let mut next = vec![0.0; ndof];
        let t = Instant::now();
        for _ in 0..n_steps {
            step(&up, &un, &f, &mut next);
            std::mem::swap(&mut up, &mut un);
            std::mem::swap(&mut un, &mut next);
        }
        best = best.min(t.elapsed().as_secs_f64());
        assert!(un.iter().all(|v| v.is_finite()), "stepper diverged");
    }
    let steps_per_sec = n_steps as f64 / best;
    (steps_per_sec, steps_per_sec * mesh.n_elements() as f64)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (coarse, n_steps, trials) = if smoke { (2, 4, 1) } else { (4, 20, 3) };

    let mesh = build_mesh(coarse);
    let mut cfg = ElasticConfig::new(1.0);
    cfg.dt = Some(if smoke { 0.05 } else { 0.01 });
    cfg.abc = [true, true, true, true, false, true];
    cfg.rayleigh = Some(RayleighBand { f_lo: 0.05, f_hi: 2.0 });
    let solver = ElasticSolver::new(&mesh, &cfg);
    let u0 = shear_pulse(&mesh);
    println!(
        "mesh: {} elements / {} nodes ({} hanging), dt = {}, {} steps x {} trials",
        mesh.n_elements(),
        mesh.n_nodes(),
        mesh.n_hanging(),
        solver.dt,
        n_steps,
        trials
    );

    let (base_sps, base_eups) = time_stepper(&mesh, &u0, n_steps, trials, |up, un, f, next| {
        reference_step(&solver, up, un, f, next);
    });
    println!("baseline : {base_sps:>8.2} steps/s  {base_eups:>12.3e} element-updates/s");

    let mut ws = solver.workspace();
    let (fused_sps, fused_eups) = time_stepper(&mesh, &u0, n_steps, trials, |up, un, f, next| {
        solver.step_with(up, un, f, next, &mut ws);
    });
    println!("fused    : {fused_sps:>8.2} steps/s  {fused_eups:>12.3e} element-updates/s");

    let speedup = fused_eups / base_eups;
    println!("speedup  : {speedup:.2}x element-updates/s (fused vs baseline)");
    let parallel = cfg!(feature = "parallel");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"mesh_elements\": {},\n", mesh.n_elements()));
    json.push_str(&format!("  \"mesh_nodes\": {},\n", mesh.n_nodes()));
    json.push_str(&format!("  \"hanging_nodes\": {},\n", mesh.n_hanging()));
    json.push_str(&format!("  \"n_steps\": {n_steps},\n  \"trials\": {trials},\n"));
    json.push_str(&format!(
        "  \"baseline\": {{ \"steps_per_sec\": {base_sps:.3}, \"element_updates_per_sec\": {base_eups:.1} }},\n"
    ));
    json.push_str(&format!(
        "  \"fused\": {{ \"steps_per_sec\": {fused_sps:.3}, \"element_updates_per_sec\": {fused_eups:.1}, \"parallel_sweep\": {parallel} }},\n"
    ));
    json.push_str(&format!("  \"speedup_fused_vs_baseline\": {speedup:.3}\n}}\n"));

    if smoke {
        println!("\n{json}");
        println!("smoke mode: JSON not written");
    } else {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_step_throughput.json");
        std::fs::write(path, &json).expect("write BENCH_step_throughput.json");
        println!("\nwrote {path}");
    }
    assert!(
        speedup >= if smoke { 0.5 } else { 1.3 },
        "fused step regressed below the 1.3x acceptance bar: {speedup:.2}x"
    );
}
