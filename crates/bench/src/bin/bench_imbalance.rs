//! Cross-rank load-imbalance and comm-wait attribution benchmark.
//!
//! Runs the rank-parallel elastic solver with per-rank flight recorders on a
//! multiresolution mesh (the production configuration: hanging nodes cross
//! partition boundaries, absorbing boundaries on) and reports *where the
//! time goes across ranks*:
//!
//! - the min/max/mean-across-ranks reduction of every shared phase span
//!   (the per-phase load-imbalance view of the paper's scaling tables),
//! - the timed exchange's `wait` vs `copy` split — blocked-on-peer time
//!   attributed separately from pack/unpack time, per rank,
//! - the per-step `imbalance` gauge (max/mean of the element-phase time
//!   across ranks, 1.0 = perfectly balanced) recorded by the solver's
//!   `ImbalanceHook`,
//! - one merged Chrome `trace_event` timeline with a track per rank
//!   (`target/BENCH_imbalance_trace.json` — open in Perfetto or
//!   chrome://tracing), where the cross-rank skew is visible because all
//!   ranks share one trace epoch.
//!
//! The full run writes `BENCH_imbalance.json` at the repo root; `--smoke`
//! (CI) runs a smaller mesh and prints the JSON to stdout instead. Both
//! modes write the merged Chrome trace and exit nonzero if the timeline is
//! malformed (missing rank tracks or missing wait/copy slices).

use quake_mesh::hexmesh::{ElemMaterial, HexMesh};
use quake_octree::{BalanceMode, LinearOctree, MAX_LEVEL};
use quake_solver::distributed::run_distributed;
use quake_solver::{DistConfig, ElasticConfig, ElasticSolver};
use quake_telemetry::json::chrome_trace;

const RANKS: usize = 4;
const TRACE_EVENTS: usize = 65536;

fn build_mesh(coarse: u8) -> HexMesh {
    let half = 1u32 << (MAX_LEVEL - 1);
    let fine = coarse + 1;
    let mut tree = LinearOctree::build(|o| o.level < coarse || (o.level < fine && o.x < half));
    tree.balance(BalanceMode::Full);
    HexMesh::from_octree(&tree, 8.0, |_, _, _, _| ElemMaterial { lambda: 2.0, mu: 1.0, rho: 1.0 })
}

fn pulse(mesh: &HexMesh) -> (Vec<f64>, Vec<f64>) {
    let n = mesh.n_nodes();
    let mut u = vec![0.0; 3 * n];
    let v = vec![0.0; 3 * n];
    for (i, c) in mesh.coords.iter().enumerate() {
        let r2 = (c[0] - 4.0).powi(2) + (c[1] - 4.0).powi(2) + (c[2] - 4.0).powi(2);
        u[3 * i + 1] = (-r2 / 2.0).exp();
    }
    mesh.interpolate_hanging(&mut u, 3);
    (u, v)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (coarse, steps) = if smoke { (2u8, 8usize) } else { (3, 24) };

    let mesh = build_mesh(coarse);
    let mut cfg = ElasticConfig::new(1.0);
    cfg.dt = Some(0.05);
    cfg.abc = [true, true, true, true, false, true];
    let solver = ElasticSolver::new(&mesh, &cfg);
    let (u0, v0) = pulse(&mesh);
    println!(
        "mesh: {} elements / {} nodes ({} hanging), {RANKS} ranks x {steps} steps",
        mesh.n_elements(),
        mesh.n_nodes(),
        mesh.n_hanging()
    );

    let run = run_distributed(
        &solver,
        &DistConfig::new(RANKS, steps).with_initial(&u0, &v0).with_trace(TRACE_EVENTS),
    );

    // ---- acceptance: the merged timeline is well-formed ----
    assert_eq!(run.traces.len(), RANKS, "one flight recorder per rank");
    for (rank, buf) in run.traces.iter().enumerate() {
        let count = |n: &str| buf.events.iter().filter(|e| e.name == n).count();
        assert_eq!(count("step"), steps, "rank {rank}: step slices");
        assert_eq!(count("step/exchange/wait"), steps, "rank {rank}: wait slices");
        assert_eq!(count("step/exchange/copy"), steps, "rank {rank}: copy slices");
    }
    let trace_json = chrome_trace(&run.traces);
    for rank in 0..RANKS {
        assert!(trace_json.contains(&format!("\"rank {rank}\"")), "missing track for rank {rank}");
    }

    // ---- per-phase imbalance from the cross-rank reduction ----
    let by = |n: &str| {
        run.reduced
            .iter()
            .find(|r| r.name == n)
            .unwrap_or_else(|| panic!("missing reduced metric {n}"))
    };
    let phases = [
        "step",
        "step/fill",
        "step/elements",
        "step/abc",
        "step/fold",
        "step/exchange",
        "step/exchange/wait",
        "step/exchange/copy",
        "step/tail",
    ];
    println!("\nper-phase wall time across ranks (secs; imbalance = max/mean):");
    println!("{:<22} {:>10} {:>10} {:>10} {:>10}", "phase", "min", "mean", "max", "imbalance");
    let mut rows = String::new();
    for (i, ph) in phases.iter().enumerate() {
        let r = by(&format!("span.{ph}.secs"));
        let imb = if r.mean > 0.0 { r.max / r.mean } else { 1.0 };
        println!("{ph:<22} {:>10.6} {:>10.6} {:>10.6} {imb:>10.3}", r.min, r.mean, r.max);
        rows.push_str(&format!(
            "    {{ \"name\": \"{ph}\", \"min_secs\": {:.9}, \"mean_secs\": {:.9}, \
             \"max_secs\": {:.9}, \"imbalance\": {imb:.4} }}{}\n",
            r.min,
            r.mean,
            r.max,
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    let gauge = by("gauge.imbalance");
    // Histogram quantiles do not reduce across ranks, but the imbalance
    // value is computed from a collective and is identical on every rank:
    // rank 0's snapshot speaks for all.
    let snap = &run.snapshots[0];
    let per_step_mean = snap.get("hist.imbalance.mean").expect("hist.imbalance.mean");
    let per_step_p99 = snap.get("hist.imbalance.p99").expect("hist.imbalance.p99");
    println!(
        "\nimbalance gauge (element phase, last step): {:.3}; per-step mean {:.3}, p99 {:.3}",
        gauge.mean, per_step_mean, per_step_p99
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"ranks\": {RANKS},\n  \"n_steps\": {steps},\n"));
    json.push_str(&format!("  \"mesh_elements\": {},\n", mesh.n_elements()));
    json.push_str(&format!("  \"mesh_nodes\": {},\n", mesh.n_nodes()));
    json.push_str(&format!(
        "  \"elements_per_rank\": [{}],\n",
        run.elements.iter().map(|e| e.len().to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str(&format!(
        "  \"exchange_volumes\": [{}],\n",
        run.volumes.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str(&format!("  \"imbalance_gauge_last_step\": {:.4},\n", gauge.mean));
    json.push_str(&format!("  \"imbalance_per_step_mean\": {per_step_mean:.4},\n"));
    json.push_str(&format!("  \"imbalance_per_step_p99\": {per_step_p99:.4},\n"));
    json.push_str("  \"phases\": [\n");
    json.push_str(&rows);
    json.push_str("  ],\n");
    json.push_str("  \"trace\": \"target/BENCH_imbalance_trace.json\"\n}\n");

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let _ = std::fs::create_dir_all(format!("{root}/target"));
    let trace_path = format!("{root}/target/BENCH_imbalance_trace.json");
    std::fs::write(&trace_path, &trace_json).expect("write Chrome trace");
    println!("\nwrote {trace_path}");
    if smoke {
        println!("\n{json}");
        println!("smoke mode: committed JSON not written");
    } else {
        let jp = format!("{root}/BENCH_imbalance.json");
        std::fs::write(&jp, &json).expect("write BENCH_imbalance.json");
        println!("wrote {jp}");
    }
}
