//! Fig 2.1 — the etree mesh-generation pipeline (construct / balance /
//! transform), run out-of-core on disk, with the local-balancing speedup.

use quake_bench::{full_scale, print_table};
use quake_etree::{DiskStore, EtreePipeline, MaterialRec, MemStore, OctantStore, PipelineStats};
use quake_model::{LaBasinModel, MaterialModel};
use quake_octree::{BalanceMode, LinearOctree, Octant};
use std::time::Instant;

fn main() {
    let extent = 40_000.0;
    let model = LaBasinModel::scaled(200.0, extent);
    let fmax = if full_scale() { 0.3 } else { 0.2 };
    let max_level = if full_scale() { 8 } else { 7 };
    let ppw = 10.0;

    let refine = |o: &Octant| -> bool {
        if o.level < 3 {
            return true;
        }
        if o.level >= max_level {
            return false;
        }
        let c = o.center_unit();
        let s = o.size_unit();
        let lo = [(c[0] - s / 2.0) * extent, (c[1] - s / 2.0) * extent, (c[2] - s / 2.0) * extent];
        let hi = [(c[0] + s / 2.0) * extent, (c[1] + s / 2.0) * extent, (c[2] + s / 2.0) * extent];
        let vs = model.min_vs_in_box(lo, hi);
        o.size_unit() * extent > vs / (ppw * fmax)
    };
    let material = |o: &Octant| -> MaterialRec {
        let c = o.center_unit();
        let m = model.sample(c[0] * extent, c[1] * extent, c[2] * extent);
        MaterialRec { vp: m.vp, vs: m.vs, rho: m.rho }
    };

    let dir = std::env::temp_dir().join(format!("quake-fig2_1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // --- Out-of-core pipeline on the disk B-tree. ---
    let pipeline = EtreePipeline::default();
    let mut stats = PipelineStats::default();
    let mut store = DiskStore::create(&dir.join("octants.btree"), 1024).unwrap();
    pipeline.construct(&mut store, refine, material, &mut stats).unwrap();
    pipeline.balance(&mut store, material, &mut stats).unwrap();
    let db = pipeline.transform(&mut store, &dir, &mut stats).unwrap();
    store.flush().unwrap();
    let io = store.io_stats();

    print_table(
        "Fig 2.1: etree pipeline (out-of-core, disk B-tree)",
        &["stage", "octants/records", "seconds"],
        &[
            vec![
                "construct".into(),
                format!("{}", stats.constructed_octants),
                format!("{:.2}", stats.construct_secs),
            ],
            vec![
                "balance".into(),
                format!("{}", stats.after_balance_octants),
                format!("{:.2}", stats.balance_secs),
            ],
            vec![
                "transform".into(),
                format!("{} elem / {} nodes ({} hanging)", db.n_elements, db.n_nodes, db.n_hanging),
                format!("{:.2}", stats.transform_secs),
            ],
        ],
    );
    println!(
        "pager: {} reads, {} writes, {} hits, {} misses, {} evictions",
        io.disk_reads, io.disk_writes, io.cache_hits, io.cache_misses, io.evictions
    );
    println!(
        "boundary queue (local balancing): {} of {} octants",
        stats.boundary_queue_len, stats.after_balance_octants
    );

    // --- Local vs global balancing (in memory, timing comparison). ---
    let mut mem = MemStore::new();
    let mut s2 = PipelineStats::default();
    pipeline.construct(&mut mem, refine, material, &mut s2).unwrap();
    let mut leaves = Vec::new();
    mem.scan_all(&mut |o, _| leaves.push(o)).unwrap();

    let mut t_global = LinearOctree::from_leaves(leaves.clone());
    let t0 = Instant::now();
    t_global.balance(BalanceMode::Full);
    let global_secs = t0.elapsed().as_secs_f64();

    let mut t_local = LinearOctree::from_leaves(leaves);
    let t0 = Instant::now();
    quake_octree::balance_local(&mut t_local, BalanceMode::Full, 2);
    let local_secs = t0.elapsed().as_secs_f64();
    assert_eq!(t_global.leaves(), t_local.leaves(), "local balancing must match global");
    print_table(
        "local vs global balancing (identical results)",
        &["method", "seconds"],
        &[
            vec!["global ripple".into(), format!("{global_secs:.2}")],
            vec!["local (8^2 blocks) + boundary".into(), format!("{local_secs:.2}")],
        ],
    );
    println!(
        "(the paper's 8-28x local-balancing speedup is an *out-of-core* effect:\n\
         block-local work stays inside the page cache; in-core the benefit is\n\
         locality of the BTreeMap working set)"
    );
    std::fs::remove_dir_all(dir).ok();
}
