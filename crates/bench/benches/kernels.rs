//! Kernel benchmarks + the ablations DESIGN.md calls out:
//! element-based dense matvec vs CSR sparse matvec (the cache claim of
//! Section 2), lumped vs consistent element work, global vs local octree
//! balancing, disk B-tree throughput, partitioners, and preconditioned vs
//! unpreconditioned Gauss-Newton CG.
//!
//! The harness is hand-rolled (this build environment is offline, so
//! criterion is unavailable): each benchmark is auto-calibrated to roughly
//! 0.2s of work, run for several batches, and reported as the best batch
//! mean in ns/iter — the same statistic `cargo bench` prints.

use quake_etree::BTree;
use quake_fem::hex8::{elastic_hex_matrices, elastic_matvec};
use quake_mesh::hexmesh::ElemMaterial;
use quake_mesh::{partition_morton, partition_rcb, HexMesh};
use quake_octree::{balance_local, BalanceMode, LinearOctree, MAX_LEVEL};
use quake_solver::tet::TetSolver;
use quake_solver::{ElasticConfig, ElasticSolver};
use std::hint::black_box;
use std::time::Instant;

/// Time `f`, auto-calibrating the iteration count, and print ns/iter.
fn bench_function<R>(name: &str, mut f: impl FnMut() -> R) {
    // Calibrate: grow the batch until it takes >= ~20ms.
    let mut batch = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let dt = t.elapsed();
        if dt.as_millis() >= 20 || batch >= 1 << 24 {
            break;
        }
        batch *= 8;
    }
    // Measure: several batches, report the best mean (least noisy).
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let per = t.elapsed().as_nanos() as f64 / batch as f64;
        if per < best {
            best = per;
        }
    }
    println!("{name:<44} {best:>14.1} ns/iter  ({batch} iters/batch)");
}

fn mesh(level: u8) -> HexMesh {
    HexMesh::from_octree(&LinearOctree::uniform(level), 8.0, |_, _, _, _| ElemMaterial {
        lambda: 2.0,
        mu: 1.0,
        rho: 1.0,
    })
}

fn bench_element_matvec() {
    let mats = elastic_hex_matrices();
    let x: [f64; 24] = std::array::from_fn(|i| (i as f64 * 0.37).sin());
    bench_function("hex8_elastic_matvec_24x24", || {
        let mut y = [0.0; 24];
        elastic_matvec(mats, 2.0, 1.0, 1.5, black_box(&x), &mut y);
        y
    });
}

fn bench_solver_step_hex_vs_tet() {
    // The cache/data-structure claim: the element-based dense hex step vs
    // the node-based CSR tet step on the same mesh.
    let m = mesh(4); // 4096 elements
    let mut cfg = ElasticConfig::new(1.0);
    cfg.abc = [false; 6];
    cfg.dt = Some(0.02);
    let hex = ElasticSolver::new(&m, &cfg);
    let tet = TetSolver::new(&m, 0.02, [false; 6]);
    let ndof = 3 * m.n_nodes();
    // Synthetic state: hex `step_with` reads planar dofs, tet `step` reads
    // interleaved; the data here is layout-agnostic filler, timed only.
    let u_prev = vec![0.01; ndof];
    let u_now: Vec<f64> = (0..ndof).map(|i| (i as f64 * 0.1).sin() * 0.01).collect();
    let f = vec![0.0; ndof];
    let mut out = vec![0.0; ndof];
    let mut ws = hex.workspace();
    bench_function("elastic_step_hex_matrixfree_4096elem", || {
        hex.step_with(black_box(&u_prev), black_box(&u_now), &f, &mut out, &mut ws);
    });
    bench_function("elastic_step_tet_csr_4096hex(24576tet)", || {
        tet.step(black_box(&u_prev), black_box(&u_now), &f, &mut out);
    });
}

fn bench_octree_balance() {
    let half = 1u32 << (MAX_LEVEL - 1);
    let build = || LinearOctree::build(|o| o.level < 6 && o.contains_point(half, half, half));
    bench_function("octree_balance_global", || {
        let mut t = build();
        t.balance(BalanceMode::Full);
        t.len()
    });
    bench_function("octree_balance_local_8blocks", || {
        let mut t = build();
        balance_local(&mut t, BalanceMode::Full, 1);
        t.len()
    });
}

fn bench_btree() {
    let dir = std::env::temp_dir().join(format!("quake-bench-btree-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut i = 0u32;
    bench_function("btree_insert_10k_morton_ordered", || {
        i += 1;
        let path = dir.join(format!("t{i}.btree"));
        let mut t = BTree::create(&path, 24, 256).unwrap();
        for k in 0..10_000u64 {
            t.insert(k * 32, &[0u8; 24]).unwrap();
        }
        std::fs::remove_file(&path).ok();
        t.len()
    });
    let path = dir.join("scan.btree");
    let mut t = BTree::create(&path, 24, 256).unwrap();
    for k in 0..50_000u64 {
        t.insert(k * 7, &[1u8; 24]).unwrap();
    }
    bench_function("btree_scan_50k", || {
        let mut count = 0u64;
        t.scan_all(|_, _| count += 1).unwrap();
        count
    });
    std::fs::remove_file(&path).ok();
}

fn bench_partitioners() {
    let m = mesh(4);
    let centers: Vec<[f64; 3]> = m
        .elements
        .iter()
        .map(|e| {
            let lo = m.coords[e.nodes[0] as usize];
            [lo[0] + e.h / 2.0, lo[1] + e.h / 2.0, lo[2] + e.h / 2.0]
        })
        .collect();
    bench_function("partition_morton_4096elem_64parts", || partition_morton(black_box(4096), 64));
    bench_function("partition_rcb_4096elem_64parts", || partition_rcb(black_box(&centers), 64));
}

fn bench_lumped_vs_consistent() {
    // Ablation: the per-element cost of a consistent-mass multiply vs the
    // (free) lumped diagonal — the reason the paper lumps.
    let mc = quake_fem::hex8::consistent_hex_mass();
    let x: [f64; 8] = std::array::from_fn(|i| i as f64 + 0.5);
    bench_function("mass_consistent_8x8_matvec", || {
        let mut y = [0.0; 8];
        for r in 0..8 {
            for cc in 0..8 {
                y[r] += mc[r][cc] * black_box(x)[cc];
            }
        }
        y
    });
    bench_function("mass_lumped_8_scale", || {
        let mut y = [0.0; 8];
        for r in 0..8 {
            y[r] = 0.125 * black_box(x)[r];
        }
        y
    });
}

fn bench_gn_cg_preconditioning() {
    // Ablation: CG with and without the Morales-Nocedal L-BFGS
    // preconditioner on a reduced-Hessian-like SPD system.
    use quake_inverse::gncg::{pcg, Lbfgs};
    let n = 200;
    let hess = |v: &[f64]| -> Vec<f64> {
        // Ill-conditioned diagonal + smoothing coupling.
        (0..n)
            .map(|i| {
                let d = 1.0 + (i as f64 / n as f64) * 99.0;
                let nb =
                    if i > 0 { v[i - 1] } else { 0.0 } + if i + 1 < n { v[i + 1] } else { 0.0 };
                d * v[i] - 0.45 * nb
            })
            .collect()
    };
    let b: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
    // Warm up a preconditioner from one solve.
    let mut warm = Lbfgs::new(30);
    let none = Lbfgs::new(0);
    let mut sink = Lbfgs::new(0);
    let _ = pcg(&mut |v| hess(v), &b, 1e-8, 400, &none, &mut warm);
    bench_function("gn_cg_unpreconditioned", || {
        pcg(&mut |v| hess(v), black_box(&b), 1e-8, 400, &none, &mut sink)
    });
    bench_function("gn_cg_lbfgs_preconditioned", || {
        let mut next = Lbfgs::new(0);
        pcg(&mut |v| hess(v), black_box(&b), 1e-8, 400, &warm, &mut next)
    });
}

fn main() {
    bench_element_matvec();
    bench_solver_step_hex_vs_tet();
    bench_octree_balance();
    bench_btree();
    bench_partitioners();
    bench_lumped_vs_consistent();
    bench_gn_cg_preconditioning();
}
