//! Engine semantics under load: lanes, admission control, hazard-map
//! ensembles, and the drain/shutdown exactly-once guarantee.

use quake_mesh::MeshingParams;
use quake_model::{ExtendedFault, LaBasinModel, PointSource};
use quake_serve::{EngineConfig, HazardMap, Lane, ScenarioRequest, ServeEngine, ServeError};
use quake_solver::ElasticConfig;
use std::path::PathBuf;

const EXTENT: f64 = 8_000.0;

fn small_config() -> EngineConfig {
    let mut meshing = MeshingParams::new(EXTENT, 0.4);
    meshing.min_level = 2;
    meshing.max_level = 4;
    EngineConfig::new(meshing, ElasticConfig::new(1.0))
}

fn model() -> LaBasinModel {
    LaBasinModel::scaled(400.0, EXTENT)
}

fn sources(n_strike: usize) -> Vec<PointSource> {
    ExtendedFault::northridge_like(EXTENT).discretize(n_strike, 2)
}

fn receivers() -> Vec<[f64; 3]> {
    vec![[2_000.0, 3_000.0, 0.0], [4_000.0, 4_500.0, 0.0], [6_000.0, 6_000.0, 0.0]]
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quake-serve-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn drain_completes_every_accepted_request_exactly_once() {
    // Kill-during-serve: flood the queue, immediately drain, and require
    // every ticket to resolve exactly once with a well-formed result.
    let mut cfg = small_config();
    cfg.workers = 3;
    let engine = ServeEngine::start(&model(), cfg).unwrap();
    let n = 12;
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            // Distinct scenarios (shifted slip delay) so nothing coalesces.
            let mut s = sources(2);
            for src in &mut s {
                src.slip.delay += i as f64 * 1e-3;
            }
            engine
                .submit(ScenarioRequest::new(s, receivers()).with_steps(4))
                .expect("capacity is ample")
        })
        .collect();

    // Drain races the workers mid-serve.
    engine.drain();
    let stats = engine.stats();
    assert_eq!(stats.queued, 0, "drain left requests queued");
    assert_eq!(stats.in_flight, 0, "drain left requests in flight");
    assert_eq!(stats.served, n as u64, "accepted != served: lost or duplicated work");
    assert_eq!(stats.outstanding_cost, 0, "cost ledger did not return to zero");

    // Post-drain submits are refused, not dropped.
    assert!(matches!(
        engine.submit(ScenarioRequest::new(sources(2), receivers())),
        Err(ServeError::Stopped)
    ));

    // Every ticket resolves with a real result (channels enforce at most
    // one reply; served == n enforces at least one execution each).
    for t in tickets {
        let resp = t.wait().expect("accepted request lost during drain");
        assert_eq!(resp.result.executed_steps, 4);
        assert_eq!(resp.result.traces.len(), 3);
        assert!(resp.result.traces.iter().all(|tr| tr.n_samples() == 4));
    }

    let reg = engine.shutdown();
    assert_eq!(reg.counter("serve/cache_miss"), Some(n as u64));
}

#[test]
fn interactive_lane_overtakes_batch_backlog() {
    // One worker, a batch backlog, then an interactive arrival: with FIFO
    // it would finish last; the lane must put it ahead of every queued
    // batch job. The worker may already hold one batch job when the
    // interactive request lands, so "ahead" means: at least one queued
    // batch job finishes after it.
    let mut cfg = small_config();
    cfg.workers = 1;
    let engine = ServeEngine::start(&model(), cfg).unwrap();
    let mk = |i: usize, lane: Lane| {
        let mut s = sources(2);
        for src in &mut s {
            src.slip.delay += i as f64 * 1e-3;
        }
        let r = ScenarioRequest::new(s, receivers()).with_steps(30);
        match lane {
            Lane::Interactive => r.interactive(),
            Lane::Batch => r,
        }
    };
    let batch: Vec<_> = (0..4).map(|i| engine.submit(mk(i, Lane::Batch)).unwrap()).collect();
    let urgent = engine.submit(mk(99, Lane::Interactive)).unwrap();

    let done = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        let d = std::sync::Arc::clone(&done);
        scope.spawn(move || {
            urgent.wait().unwrap();
            d.lock().unwrap().push("interactive");
        });
        for t in batch {
            let d = std::sync::Arc::clone(&done);
            scope.spawn(move || {
                t.wait().unwrap();
                d.lock().unwrap().push("batch");
            });
        }
    });
    let order = done.lock().unwrap().clone();
    let pos = order.iter().position(|&s| s == "interactive").unwrap();
    assert!(
        pos < order.len() - 1,
        "interactive request finished last — the priority lane did nothing: {order:?}"
    );
    engine.shutdown();
}

#[test]
fn admission_rejects_on_queue_and_cost_limits() {
    let mut cfg = small_config();
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    let engine = ServeEngine::start(&model(), cfg).unwrap();
    let v_elems = engine.variants()[0].n_elements;

    // Unknown material perturbation is refused outright.
    assert!(matches!(
        engine.submit(ScenarioRequest::new(sources(2), receivers()).with_model_scale(1.3)),
        Err(ServeError::UnknownModelScale(_))
    ));

    // Fill: one in flight + two queued, then the queue cap bites.
    let mut held = Vec::new();
    let mut rejected_queue = false;
    for i in 0..8 {
        let mut s = sources(2);
        for src in &mut s {
            src.slip.delay += i as f64 * 1e-3;
        }
        match engine.submit(ScenarioRequest::new(s, receivers()).with_steps(40)) {
            Ok(t) => held.push(t),
            Err(ServeError::QueueFull) => {
                rejected_queue = true;
                break;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(rejected_queue, "queue capacity 2 never produced QueueFull");
    for t in held {
        t.wait().unwrap();
    }
    engine.shutdown();

    // Cost budget: admit one 10-step run, refuse the second while the
    // first is outstanding.
    let mut cfg = small_config();
    cfg.workers = 1;
    cfg.cost_budget = v_elems * 15;
    let engine = ServeEngine::start(&model(), cfg).unwrap();
    let first = engine.submit(ScenarioRequest::new(sources(2), receivers()).with_steps(10));
    let t = match first {
        Ok(t) => t,
        Err(e) => panic!("first request should fit the budget: {e}"),
    };
    assert_eq!(t.cost(), v_elems * 10);
    let second = engine.submit(ScenarioRequest::new(sources(3), receivers()).with_steps(10));
    assert!(
        matches!(second, Err(ServeError::Overloaded { .. })),
        "second request should exceed the cost budget while the first is outstanding"
    );
    t.wait().unwrap();
    // After the backlog clears, admission reopens.
    engine.drain();
    let reg = engine.shutdown();
    assert!(reg.counter("serve/rejected_overloaded").unwrap() >= 1);
}

#[test]
fn hazard_map_reduces_an_ensemble_and_perturbed_models_get_their_own_mesh() {
    let mut cfg = small_config();
    cfg.workers = 2;
    cfg.model_scales = vec![1.0, 1.1];
    let dir = tmpdir("hazard");
    let engine = ServeEngine::start(&model(), cfg.with_cache(dir.clone(), 0)).unwrap();
    assert_eq!(engine.variants().len(), 2);
    let (b, p) = (&engine.variants()[0], &engine.variants()[1]);
    assert_ne!(b.fingerprint, p.fingerprint);
    // The perturbed material changes the CFL-limited step (same level
    // bounds, faster velocities), so the variants are physically distinct.
    assert_ne!(p.dt.to_bits(), b.dt.to_bits());

    // Ensemble over rupture timing and material scale, one shared layout.
    let members: Vec<ScenarioRequest> = (0..4)
        .map(|i| {
            let mut s = sources(2);
            for src in &mut s {
                src.slip.delay += i as f64 * 0.05;
            }
            let scale = if i % 2 == 0 { 1.0 } else { 1.1 };
            ScenarioRequest::new(s, receivers()).with_steps(12).with_model_scale(scale)
        })
        .collect();
    let (map, responses) = engine.hazard_map(members.clone()).unwrap();
    assert_eq!(map.members, 4);
    assert_eq!(map.receivers, receivers());
    assert!(map.max_pgv() > 0.0, "an earthquake ensemble produced zero ground motion");
    // The map is the elementwise max of the member PGVs.
    for (j, &pgv) in map.pgv.iter().enumerate() {
        let member_max = responses
            .iter()
            .map(|r| quake_serve::trace_pgv(&r.result.traces[j]))
            .fold(0.0f64, f64::max);
        assert_eq!(pgv, member_max);
    }

    // Resubmitting the ensemble is pure cache replay with an identical map.
    let (map2, responses2) = engine.hazard_map(members).unwrap();
    assert!(responses2.iter().all(|r| r.cache_hit));
    assert_eq!(map2.pgv, map.pgv);

    // Mismatched layouts are refused.
    let mut bad = vec![ScenarioRequest::new(sources(2), receivers())];
    bad.push(ScenarioRequest::new(sources(2), vec![[0.0, 0.0, 0.0]]));
    assert!(matches!(engine.hazard_map(bad), Err(ServeError::MismatchedEnsemble)));

    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hazard_map_standalone_reduction_matches_engine_path() {
    // HazardMap is usable without an engine (post-hoc reduction).
    let mut map = HazardMap::new(vec![[0.0; 3]; 2]);
    map.absorb(&[0.5, 2.0]);
    map.absorb(&[1.5, 1.0]);
    assert_eq!(map.pgv, vec![1.5, 2.0]);
}
