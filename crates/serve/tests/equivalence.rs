//! The serving engine's correctness anchor: a served scenario is
//! **bit-identical** to a direct `quake_core::ForwardRun` of the same
//! scenario — uncached (computed by a worker on reused scratch) and cached
//! (replayed from the content-addressed store) alike.

use quake_core::forward::{northridge_scenario, ForwardRun};
use quake_serve::{EngineConfig, ScenarioRequest, ServeEngine};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("quake-serve-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn served_traces_match_forward_run_bit_for_bit_cold_and_cached() {
    // The direct pipeline, exactly as quake-core drives it.
    let (model, mut scenario) = northridge_scenario(8_000.0, 0.4, 400.0, 2.5, 3);
    scenario.meshing.min_level = 2;
    scenario.meshing.max_level = 4;
    let direct = ForwardRun::new(&model, &scenario).execute().unwrap();

    // The same scenario through the engine.
    let dir = tmpdir("equiv");
    let cfg =
        EngineConfig::new(scenario.meshing, scenario.solve.clone()).with_cache(dir.clone(), 0);
    let engine = ServeEngine::start(&model, cfg).unwrap();

    // Sanity: the engine's variant meshed the same domain.
    let v = engine.variant_for(1.0).expect("baseline variant");
    assert_eq!(v.mesh.n_nodes(), direct.mesh.n_nodes());
    assert_eq!(v.n_steps, direct.result.n_steps as u64);
    assert_eq!(v.dt.to_bits(), direct.result.dt.to_bits());

    let sources = scenario.fault.discretize(scenario.n_subfaults.0, scenario.n_subfaults.1);
    let request = ScenarioRequest::new(sources, scenario.receivers.clone());

    // Cold: computed by a worker on reused scratch.
    let cold = engine.submit(request.clone()).unwrap().wait().unwrap();
    assert!(!cold.cache_hit);
    assert_eq!(cold.result.executed_steps, direct.result.n_steps as u64);
    assert_eq!(cold.result.traces.len(), direct.result.seismograms.len());
    for (a, b) in cold.result.traces.iter().zip(&direct.result.seismograms) {
        assert_eq!(a.dt.to_bits(), b.dt.to_bits());
        assert_eq!(a.data.len(), b.data.len());
        for (x, y) in a.data.iter().zip(&b.data) {
            assert_eq!(x.to_bits(), y.to_bits(), "served trace diverged from ForwardRun");
        }
    }

    // Warm: replayed from the content-addressed store, still bit-identical.
    let warm = engine.submit(request).unwrap().wait().unwrap();
    assert!(warm.cache_hit, "second submit of the identical request must hit the cache");
    assert_eq!(warm.key, cold.key);
    for (a, b) in warm.result.traces.iter().zip(&direct.result.seismograms) {
        assert_eq!(a.data.len(), b.data.len());
        for (x, y) in a.data.iter().zip(&b.data) {
            assert_eq!(x.to_bits(), y.to_bits(), "cached replay diverged from ForwardRun");
        }
    }

    // A permuted-source resubmission shares the cache entry (canonical
    // addressing) without having been executed in permuted order.
    let sources2 = {
        let mut s = scenario.fault.discretize(scenario.n_subfaults.0, scenario.n_subfaults.1);
        s.reverse();
        s
    };
    let permuted = engine
        .submit(ScenarioRequest::new(sources2, scenario.receivers.clone()))
        .unwrap()
        .wait()
        .unwrap();
    assert!(permuted.cache_hit, "permuted-equal request must share the cache entry");
    assert_eq!(permuted.key, cold.key);

    let reg = engine.shutdown();
    assert_eq!(reg.counter("serve/cache_miss"), Some(1));
    assert_eq!(reg.counter("serve/cache_hit"), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncached_engine_recomputes_and_still_matches() {
    let (model, mut scenario) = northridge_scenario(8_000.0, 0.4, 400.0, 1.5, 2);
    scenario.meshing.min_level = 2;
    scenario.meshing.max_level = 4;
    let direct = ForwardRun::new(&model, &scenario).execute().unwrap();

    // No cache directory: every submit recomputes on worker scratch.
    let engine =
        ServeEngine::start(&model, EngineConfig::new(scenario.meshing, scenario.solve.clone()))
            .unwrap();
    let sources = scenario.fault.discretize(scenario.n_subfaults.0, scenario.n_subfaults.1);
    for round in 0..2 {
        let resp = engine
            .submit(ScenarioRequest::new(sources.clone(), scenario.receivers.clone()))
            .unwrap()
            .wait()
            .unwrap();
        assert!(!resp.cache_hit, "round {round}: no cache configured");
        for (a, b) in resp.result.traces.iter().zip(&direct.result.seismograms) {
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "round {round} diverged");
            }
        }
    }
}
