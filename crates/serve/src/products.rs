//! Ensemble batch products: peak-ground-velocity hazard maps.
//!
//! The serving engine's first-class aggregate output: for an ensemble of N
//! source scenarios sharing one receiver layout, the hazard map holds the
//! maximum peak ground velocity each station sees across the ensemble —
//! the quantity hazard assessments contour (a deterministic-scenario
//! analogue of a shaking-hazard map over the basin's station set).

use quake_solver::Seismogram;

/// Peak ground velocity of one trace: the maximum over time of the
/// Euclidean norm of the velocity vector (all components differenced
/// together, not per-component peaks — the vector peak is what a station
/// instrument reports).
pub fn trace_pgv(tr: &Seismogram) -> f64 {
    let n = tr.n_samples();
    if n == 0 {
        return 0.0;
    }
    let vels: Vec<Vec<f64>> = (0..tr.ncomp).map(|c| tr.velocity(c)).collect();
    let mut peak = 0.0f64;
    for k in 0..n {
        let mag2: f64 = vels.iter().map(|v| v[k] * v[k]).sum();
        peak = peak.max(mag2);
    }
    peak.sqrt()
}

/// Per-receiver PGV of a full seismogram set (one value per trace).
pub fn pgv_of(traces: &[Seismogram]) -> Vec<f64> {
    traces.iter().map(trace_pgv).collect()
}

/// A peak-ground-velocity hazard map over a fixed receiver layout, reduced
/// (elementwise max) over the members of a scenario ensemble.
#[derive(Clone, Debug)]
pub struct HazardMap {
    /// The shared receiver layout (one station per entry).
    pub receivers: Vec<[f64; 3]>,
    /// Max PGV (m/s) seen at each station across the absorbed members.
    pub pgv: Vec<f64>,
    /// How many ensemble members have been absorbed.
    pub members: usize,
}

impl HazardMap {
    /// An empty map (all-zero PGV) over `receivers`.
    pub fn new(receivers: Vec<[f64; 3]>) -> HazardMap {
        let n = receivers.len();
        HazardMap { receivers, pgv: vec![0.0; n], members: 0 }
    }

    /// Max-reduce one member's per-receiver PGV into the map.
    pub fn absorb(&mut self, member_pgv: &[f64]) {
        assert_eq!(
            member_pgv.len(),
            self.pgv.len(),
            "ensemble member has a different receiver layout"
        );
        for (h, &p) in self.pgv.iter_mut().zip(member_pgv) {
            *h = h.max(p);
        }
        self.members += 1;
    }

    /// The largest station PGV on the map (0.0 while empty).
    pub fn max_pgv(&self) -> f64 {
        self.pgv.iter().fold(0.0f64, |m, &v| m.max(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace(scale: f64) -> Seismogram {
        // u(t) = scale * t on component 0 -> velocity = scale everywhere.
        let mut tr = Seismogram::new(0.5, 3);
        for k in 0..8 {
            tr.push(&[scale * 0.5 * k as f64, 0.0, 0.0]);
        }
        tr
    }

    #[test]
    fn pgv_of_a_linear_ramp_is_its_slope() {
        let tr = ramp_trace(2.0);
        assert!((trace_pgv(&tr) - 2.0).abs() < 1e-12);
        assert_eq!(trace_pgv(&Seismogram::new(0.1, 3)), 0.0);
    }

    #[test]
    fn pgv_takes_the_vector_norm_not_component_peaks() {
        let mut tr = Seismogram::new(1.0, 2);
        // Both components ramp with slope 3 and 4 -> vector velocity 5.
        for k in 0..6 {
            tr.push(&[3.0 * k as f64, 4.0 * k as f64]);
        }
        assert!((trace_pgv(&tr) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hazard_map_max_reduces_members() {
        let mut map = HazardMap::new(vec![[0.0; 3], [1.0; 3], [2.0; 3]]);
        map.absorb(&[1.0, 5.0, 2.0]);
        map.absorb(&[3.0, 4.0, 2.5]);
        assert_eq!(map.members, 2);
        assert_eq!(map.pgv, vec![3.0, 5.0, 2.5]);
        assert_eq!(map.max_pgv(), 5.0);
    }

    #[test]
    #[should_panic(expected = "different receiver layout")]
    fn mismatched_member_layout_is_refused() {
        let mut map = HazardMap::new(vec![[0.0; 3]]);
        map.absorb(&[1.0, 2.0]);
    }
}
