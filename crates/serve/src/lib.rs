//! `quake-serve` — the scenario-ensemble serving engine.
//!
//! The forward-modeling stack (`quake-core`) answers one question at a
//! time: *given this source, what does the basin do?* Hazard work asks it
//! thousands of times against one frozen mesh — ensembles over rupture
//! position, timing, magnitude, and material uncertainty. This crate turns
//! the solver into a **service** for that workload:
//!
//! - [`ScenarioRequest`] names a unit of work (sources, receiver layout,
//!   step budget, registered material perturbation) and carries a
//!   *canonical content address* ([`RequestKey`]): permuted-but-equal
//!   source lists share one key, while any single-ulp change to any `f64`
//!   input produces a new one,
//! - [`ResultCache`] is the content-addressed store behind the engine —
//!   CRC-framed files (the `quake-ckpt` format), atomic tmp+rename writes,
//!   corrupt entries degrade to recomputes, byte-budget eviction,
//! - [`ServeEngine`] owns a fixed worker pool over prebuilt mesh/solver
//!   variants. Workers reuse a preallocated [`ServeScratch`] per variant,
//!   so the steady-state serving path performs no heap allocation
//!   (machine-checked by a `lint:hot-path` region); requests queue on two
//!   lanes (`Interactive` ahead of `Batch`), admission is bounded by a
//!   telemetry-calibrated cost budget, and `drain`/`shutdown` complete
//!   every accepted request exactly once,
//! - [`HazardMap`] reduces an ensemble to per-station peak ground
//!   velocity — the first-class aggregate product.
//!
//! Served traces are **bit-identical** to a direct
//! `quake_core::ForwardRun` of the same scenario, whether computed or
//! replayed from cache (`tests/equivalence.rs` pins both).

pub mod cache;
pub mod engine;
pub mod exec;
pub mod products;
pub mod request;

pub use cache::{CachedResult, ResultCache, RESULT_KIND};
pub use engine::{
    EngineConfig, EngineStats, ScaledModel, ScenarioResponse, ServeEngine, ServeError, Ticket,
    Variant,
};
pub use exec::{effective_steps, run_scenario, ServeScratch};
pub use products::{pgv_of, trace_pgv, HazardMap};
pub use request::{Lane, RequestKey, ScenarioRequest, REQUEST_ENCODING};
