//! The scenario-serving engine: a fixed worker pool over prebuilt
//! mesh/solver variants, with priority lanes, content-addressed caching,
//! and cost-based admission control.
//!
//! Lifecycle:
//!
//! ```text
//! start:   model -> (per registered model_scale) mesh + fingerprint
//! submit:  validate -> content key -> admission (queue + cost budget)
//!          -> enqueue (Interactive lane ahead of Batch) -> Ticket
//! worker:  pop under one lock (exactly once) -> cache get
//!          -> miss: run_scenario on worker-owned ServeScratch -> cache put
//!          -> reply on the ticket channel (exactly once)
//! drain:   stop accepting; wait queues empty and in_flight == 0
//! shutdown: drain + join workers + absorb their telemetry registries
//! ```
//!
//! Exactly-once by construction: a job is popped under the queue mutex by
//! one worker, and workers only exit when the engine stopped accepting
//! *and* both lanes are empty — a drain can never strand a queued request,
//! and no request is ever visible to two workers.
//!
//! Admission control is cost-based: every request carries a projected cost
//! in *element updates* (`n_elements x effective steps` — the same analytic
//! currency `quake-machine` prices), and a submit is rejected with
//! [`ServeError::Overloaded`] when the outstanding total would exceed
//! [`EngineConfig::cost_budget`]. The knob is calibrated from telemetry:
//! workers record measured element-update throughput
//! (`serve/updates_per_sec` histogram), so `cost_budget = target_seconds x
//! observed updates/sec` bounds the backlog in wall-clock terms. Projected
//! cost is an upper bound — a cache hit releases its reservation in
//! microseconds.

use crate::cache::{CachedResult, ResultCache};
use crate::exec::{run_scenario, ServeScratch};
use crate::products::{pgv_of, HazardMap};
use crate::request::{Lane, RequestKey, ScenarioRequest};
use quake_ckpt::{CkptError, Encoder};
use quake_mesh::{mesh_from_model, HexMesh, MeshingParams};
use quake_model::{Material, MaterialModel};
use quake_octree::LinearOctree;
use quake_solver::{ElasticConfig, ElasticSolver};
use quake_telemetry::Registry;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A material model with vp/vs uniformly scaled — the engine's registered
/// perturbation family. Scaling both velocities by one factor preserves the
/// vp/vs ratio (and so Poisson's ratio), keeping every sample physical.
pub struct ScaledModel<'a, M: MaterialModel> {
    inner: &'a M,
    scale: f64,
}

impl<'a, M: MaterialModel> ScaledModel<'a, M> {
    pub fn new(inner: &'a M, scale: f64) -> ScaledModel<'a, M> {
        assert!(scale > 0.0 && scale.is_finite(), "model scale must be positive");
        ScaledModel { inner, scale }
    }
}

impl<M: MaterialModel> MaterialModel for ScaledModel<'_, M> {
    fn sample(&self, x: f64, y: f64, z: f64) -> Material {
        let m = self.inner.sample(x, y, z);
        Material { vp: m.vp * self.scale, vs: m.vs * self.scale, rho: m.rho }
    }

    fn min_vs_in_box(&self, lo: [f64; 3], hi: [f64; 3]) -> f64 {
        // Delegate to the inner model's (possibly specialized) probe; the
        // uniform scale commutes with the min.
        self.inner.min_vs_in_box(lo, hi) * self.scale
    }
}

/// One prebuilt serving context: the meshed domain for one registered
/// model scale, plus the facts submit-side admission and keying need.
pub struct Variant {
    pub scale: f64,
    pub tree: LinearOctree,
    pub mesh: HexMesh,
    /// Content-address context: hashes the scale, dt, step count, and mesh
    /// shape, so keys from different variants (or regenerated meshes) can
    /// share one cache directory without colliding by construction.
    pub fingerprint: u64,
    pub dt: f64,
    pub n_steps: u64,
    pub n_elements: u64,
}

fn variant_fingerprint(scale: f64, dt: f64, n_steps: u64, mesh: &HexMesh) -> u64 {
    let mut enc = Encoder::new();
    enc.put_str("quake.serve.variant.v1");
    enc.put_u64(scale.to_bits());
    enc.put_u64(dt.to_bits());
    enc.put_u64(n_steps);
    enc.put_u64(mesh.n_nodes() as u64);
    enc.put_u64(mesh.n_elements() as u64);
    let k = RequestKey::of(&enc.into_bytes());
    u64::from_le_bytes([k.0[0], k.0[1], k.0[2], k.0[3], k.0[4], k.0[5], k.0[6], k.0[7]])
}

/// Engine construction parameters.
pub struct EngineConfig {
    pub meshing: MeshingParams,
    pub solve: ElasticConfig,
    /// Registered material perturbations (vp/vs scale factors). A request's
    /// `model_scale` must bit-match one of these. Always include `1.0` for
    /// the baseline unless the engine intentionally serves only perturbed
    /// models.
    pub model_scales: Vec<f64>,
    /// Worker threads (each owns one `ServeScratch` per variant).
    pub workers: usize,
    /// Maximum queued (not yet started) requests across both lanes.
    pub queue_capacity: usize,
    /// Admission budget on outstanding projected cost in element updates
    /// (queued + in-flight); 0 = unlimited.
    pub cost_budget: u64,
    /// Receiver count the per-worker scratch buffers are pre-warmed for.
    pub max_receivers: usize,
    /// Result cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Cache retention budget in bytes (0 = unlimited); see
    /// [`ResultCache`].
    pub cache_byte_budget: u64,
}

impl EngineConfig {
    pub fn new(meshing: MeshingParams, solve: ElasticConfig) -> EngineConfig {
        EngineConfig {
            meshing,
            solve,
            model_scales: vec![1.0],
            workers: 2,
            queue_capacity: 1024,
            cost_budget: 0,
            max_receivers: 16,
            cache_dir: None,
            cache_byte_budget: 0,
        }
    }

    pub fn with_cache(mut self, dir: PathBuf, byte_budget: u64) -> EngineConfig {
        self.cache_dir = Some(dir);
        self.cache_byte_budget = byte_budget;
        self
    }
}

/// Why a submit was refused. Rejections are synchronous and cheap — no
/// worker time is spent on a refused request.
#[derive(Debug)]
pub enum ServeError {
    /// The request's `model_scale` bit-matches no registered variant.
    UnknownModelScale(f64),
    /// Both lanes together already hold `queue_capacity` waiting requests.
    QueueFull,
    /// Admission control: the projected cost would push the outstanding
    /// total past the budget.
    Overloaded { projected: u64, outstanding: u64, budget: u64 },
    /// The engine is draining or shut down.
    Stopped,
    /// The serving worker disappeared before replying (engine torn down
    /// while the ticket was still held).
    WorkerLost,
    /// `hazard_map` requires every ensemble member to share one receiver
    /// layout.
    MismatchedEnsemble,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModelScale(s) => write!(f, "unregistered model scale {s}"),
            ServeError::QueueFull => write!(f, "request queue is full"),
            ServeError::Overloaded { projected, outstanding, budget } => write!(
                f,
                "admission refused: projected cost {projected} + outstanding {outstanding} \
                 exceeds budget {budget} element updates"
            ),
            ServeError::Stopped => write!(f, "engine is not accepting requests"),
            ServeError::WorkerLost => write!(f, "serving worker lost before replying"),
            ServeError::MismatchedEnsemble => {
                write!(f, "ensemble members must share one receiver layout")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A served scenario: the (possibly cached) result plus serving metadata.
#[derive(Debug)]
pub struct ScenarioResponse {
    pub key: RequestKey,
    pub cache_hit: bool,
    /// Projected cost this request was admitted under (element updates).
    pub cost: u64,
    /// Worker-side service time (cache lookup + solve + cache write).
    pub exec_secs: f64,
    pub result: CachedResult,
}

/// A claim on one submitted request; [`Ticket::wait`] blocks until a worker
/// replies. Each ticket resolves exactly once.
pub struct Ticket {
    key: RequestKey,
    cost: u64,
    rx: mpsc::Receiver<ScenarioResponse>,
}

impl Ticket {
    pub fn key(&self) -> RequestKey {
        self.key
    }

    /// The projected element-update cost the request was admitted under.
    pub fn cost(&self) -> u64 {
        self.cost
    }

    pub fn wait(self) -> Result<ScenarioResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::WorkerLost)
    }
}

struct Job {
    request: ScenarioRequest,
    variant: usize,
    key: RequestKey,
    cost: u64,
    tx: mpsc::Sender<ScenarioResponse>,
}

struct QueueState {
    interactive: VecDeque<Job>,
    batch: VecDeque<Job>,
    accepting: bool,
    in_flight: usize,
    outstanding_cost: u64,
}

impl QueueState {
    fn queued(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    fn pop(&mut self) -> Option<Job> {
        self.interactive.pop_front().or_else(|| self.batch.pop_front())
    }

    fn idle(&self) -> bool {
        self.queued() == 0 && self.in_flight == 0
    }
}

struct Shared {
    variants: Vec<Variant>,
    solve: ElasticConfig,
    cache: Option<ResultCache>,
    max_receivers: usize,
    queue_capacity: usize,
    cost_budget: u64,
    q: Mutex<QueueState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    served: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
}

/// A point-in-time view of the engine's counters.
#[derive(Clone, Copy, Debug)]
pub struct EngineStats {
    pub served: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub rejected: u64,
    pub queued: usize,
    pub in_flight: usize,
    pub outstanding_cost: u64,
}

/// The scenario-ensemble serving engine. See the module docs for the
/// lifecycle and the exactly-once argument.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<Registry>>,
    /// Engine-side registry; worker registries are absorbed into it at
    /// shutdown.
    reg: Registry,
}

impl ServeEngine {
    /// Mesh every registered model scale, probe each variant's solver for
    /// its dt/step count, and start the worker pool.
    pub fn start(model: &impl MaterialModel, cfg: EngineConfig) -> Result<ServeEngine, CkptError> {
        assert!(cfg.workers >= 1, "an engine needs at least one worker");
        assert!(!cfg.model_scales.is_empty(), "register at least one model scale");
        let reg = Registry::new(0);
        let mut variants = Vec::with_capacity(cfg.model_scales.len());
        for &scale in &cfg.model_scales {
            let _s = reg.span("serve/build_variant");
            let scaled = ScaledModel::new(model, scale);
            let (tree, mesh) = mesh_from_model(&cfg.meshing, &scaled);
            // Probe solver: dt and step count are mesh/material properties.
            let probe = ElasticSolver::new(&mesh, &cfg.solve);
            let (dt, n_steps) = (probe.dt, probe.n_steps as u64);
            drop(probe);
            let fingerprint = variant_fingerprint(scale, dt, n_steps, &mesh);
            let n_elements = mesh.n_elements() as u64;
            variants.push(Variant { scale, tree, mesh, fingerprint, dt, n_steps, n_elements });
        }
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(ResultCache::open(dir, cfg.cache_byte_budget)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            variants,
            solve: cfg.solve,
            cache,
            max_receivers: cfg.max_receivers,
            queue_capacity: cfg.queue_capacity,
            cost_budget: cfg.cost_budget,
            q: Mutex::new(QueueState {
                interactive: VecDeque::new(),
                batch: VecDeque::new(),
                accepting: true,
                in_flight: 0,
                outstanding_cost: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            served: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w + 1))
                    .expect("spawn serve worker")
            })
            .collect();
        let engine = ServeEngine { shared, workers, reg };
        engine.reg.set("serve/queue_capacity", engine.shared.queue_capacity as u64);
        engine.reg.set("serve/cost_budget", engine.shared.cost_budget);
        Ok(engine)
    }

    /// Registered variants, index-aligned with request routing.
    pub fn variants(&self) -> &[Variant] {
        &self.shared.variants
    }

    /// The variant a request with `model_scale` would route to.
    pub fn variant_for(&self, model_scale: f64) -> Option<&Variant> {
        self.shared.variants.iter().find(|v| v.scale.to_bits() == model_scale.to_bits())
    }

    /// Submit one scenario. Validation, content addressing, and admission
    /// happen synchronously on the caller's thread; on acceptance the
    /// request is queued on its lane and a [`Ticket`] is returned.
    pub fn submit(&self, request: ScenarioRequest) -> Result<Ticket, ServeError> {
        let (queue_capacity, cost_budget) = (self.shared.queue_capacity, self.shared.cost_budget);
        let variant = self
            .shared
            .variants
            .iter()
            .position(|v| v.scale.to_bits() == request.model_scale.to_bits())
            .ok_or(ServeError::UnknownModelScale(request.model_scale))?;
        let v = &self.shared.variants[variant];
        let until = request.n_steps.map_or(v.n_steps, |b| b.min(v.n_steps));
        let key = request.key(v.fingerprint, until);
        let cost = v.n_elements * until;
        let (tx, rx) = mpsc::channel();
        {
            let mut q = lock(&self.shared.q);
            if !q.accepting {
                return Err(ServeError::Stopped);
            }
            if q.queued() >= queue_capacity {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                self.reg.add("serve/rejected_queue_full", 1);
                return Err(ServeError::QueueFull);
            }
            if cost_budget > 0 && q.outstanding_cost.saturating_add(cost) > cost_budget {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                self.reg.add("serve/rejected_overloaded", 1);
                return Err(ServeError::Overloaded {
                    projected: cost,
                    outstanding: q.outstanding_cost,
                    budget: cost_budget,
                });
            }
            q.outstanding_cost += cost;
            let lane = request.lane;
            let job = Job { request, variant, key, cost, tx };
            match lane {
                Lane::Interactive => q.interactive.push_back(job),
                Lane::Batch => q.batch.push_back(job),
            }
        }
        self.shared.work_cv.notify_one();
        Ok(Ticket { key, cost, rx })
    }

    /// Submit a whole ensemble; fails fast on the first rejected member
    /// (already-accepted members still execute — their tickets are
    /// returned in the error-free prefix).
    pub fn submit_ensemble(
        &self,
        requests: Vec<ScenarioRequest>,
    ) -> Result<Vec<Ticket>, (Vec<Ticket>, ServeError)> {
        let mut tickets = Vec::with_capacity(requests.len());
        for r in requests {
            match self.submit(r) {
                Ok(t) => tickets.push(t),
                Err(e) => return Err((tickets, e)),
            }
        }
        Ok(tickets)
    }

    /// Run an N-member ensemble and reduce it to a PGV hazard map. Every
    /// member must share one receiver layout (that layout becomes the
    /// map's station set).
    pub fn hazard_map(
        &self,
        requests: Vec<ScenarioRequest>,
    ) -> Result<(HazardMap, Vec<ScenarioResponse>), ServeError> {
        let Some(first) = requests.first() else {
            return Err(ServeError::MismatchedEnsemble);
        };
        let layout = first.receivers.clone();
        if requests.iter().any(|r| r.receivers != layout) {
            return Err(ServeError::MismatchedEnsemble);
        }
        let tickets = self.submit_ensemble(requests).map_err(|(_, e)| e)?;
        let mut map = HazardMap::new(layout);
        let mut responses = Vec::with_capacity(tickets.len());
        for t in tickets {
            let resp = t.wait()?;
            map.absorb(&pgv_of(&resp.result.traces));
            responses.push(resp);
        }
        Ok((map, responses))
    }

    /// Stop accepting and block until both lanes are empty and no request
    /// is in flight. Every accepted request completes; every ticket
    /// resolves.
    pub fn drain(&self) {
        let mut q = lock(&self.shared.q);
        q.accepting = false;
        self.shared.work_cv.notify_all();
        while !q.idle() {
            q = wait(&self.shared.idle_cv, q);
        }
    }

    /// Counters right now.
    pub fn stats(&self) -> EngineStats {
        let q = lock(&self.shared.q);
        EngineStats {
            served: self.shared.served.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.shared.cache_misses.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            queued: q.queued(),
            in_flight: q.in_flight,
            outstanding_cost: q.outstanding_cost,
        }
    }

    /// Observed serving throughput in element updates per second (the
    /// admission knob's calibration input): `cost_budget = target backlog
    /// seconds x this`. `None` until at least one uncached request has been
    /// served and absorbed (i.e. after [`ServeEngine::shutdown`] — use a
    /// warmup engine to calibrate a production one).
    pub fn measured_update_rate(reg: &Registry) -> Option<f64> {
        reg.histogram("serve/updates_per_sec").map(|h| h.quantile(0.5))
    }

    /// Drain, join the workers, and return the merged telemetry registry
    /// (engine spans + every worker's counters/histograms).
    pub fn shutdown(mut self) -> Registry {
        self.drain();
        for h in self.workers.drain(..) {
            if let Ok(worker_reg) = h.join() {
                self.reg.absorb(&worker_reg);
            }
        }
        std::mem::replace(&mut self.reg, Registry::disabled())
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // A dropped engine still drains: accepted requests complete and
        // workers exit cleanly (shutdown() already emptied `workers`).
        if !self.workers.is_empty() {
            self.drain();
            for h in self.workers.drain(..) {
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, telemetry_rank: usize) -> Registry {
    let reg = Registry::new(telemetry_rank);
    // Each worker owns one solver + scratch per variant, built once; the
    // solver borrows the Arc-shared mesh, the scratch is reused for every
    // request this worker ever serves.
    let solvers: Vec<ElasticSolver<'_>> =
        shared.variants.iter().map(|v| ElasticSolver::new(&v.mesh, &shared.solve)).collect();
    let mut scratches: Vec<ServeScratch> =
        solvers.iter().map(|s| ServeScratch::for_solver(s, shared.max_receivers)).collect();
    loop {
        let job = {
            let mut q = lock(&shared.q);
            loop {
                if let Some(j) = q.pop() {
                    q.in_flight += 1;
                    break Some(j);
                }
                if !q.accepting {
                    break None;
                }
                q = wait(&shared.work_cv, q);
            }
        };
        let Some(job) = job else { break };
        let cost = job.cost;
        serve_one(shared, &solvers, &mut scratches, job, &reg);
        let mut q = lock(&shared.q);
        q.in_flight -= 1;
        q.outstanding_cost = q.outstanding_cost.saturating_sub(cost);
        if q.idle() {
            shared.idle_cv.notify_all();
        }
    }
    reg
}

fn serve_one(
    shared: &Shared,
    solvers: &[ElasticSolver<'_>],
    scratches: &mut [ServeScratch],
    job: Job,
    reg: &Registry,
) {
    let _s = reg.span("serve/request");
    let t0 = Instant::now();
    let cached = shared.cache.as_ref().and_then(|c| c.get(&job.key, reg));
    let (cache_hit, result) = match cached {
        Some(r) => {
            shared.cache_hits.fetch_add(1, Ordering::Relaxed);
            reg.add("serve/cache_hit", 1);
            (true, r)
        }
        None => {
            let v = &shared.variants[job.variant];
            let exec0 = Instant::now();
            let r = run_scenario(
                &solvers[job.variant],
                &v.tree,
                &job.request.sources,
                &job.request.receivers,
                job.request.n_steps,
                &mut scratches[job.variant],
            );
            let exec_secs = exec0.elapsed().as_secs_f64();
            if let Some(c) = &shared.cache {
                // A failed write costs a future recompute, never the reply.
                let _ = c.put(&job.key, &r, reg);
            }
            shared.cache_misses.fetch_add(1, Ordering::Relaxed);
            reg.add("serve/cache_miss", 1);
            reg.add("serve/element_updates_done", r.element_updates);
            if exec_secs > 0.0 {
                reg.observe("serve/updates_per_sec", r.element_updates as f64 / exec_secs);
            }
            (false, r)
        }
    };
    shared.served.fetch_add(1, Ordering::Relaxed);
    reg.observe("serve/service_secs", t0.elapsed().as_secs_f64());
    // The caller may have dropped its ticket; that only discards the reply.
    let _ = job.tx.send(ScenarioResponse {
        key: job.key,
        cache_hit,
        cost: job.cost,
        exec_secs: t0.elapsed().as_secs_f64(),
        result,
    });
}

fn lock<'a>(m: &'a Mutex<QueueState>) -> std::sync::MutexGuard<'a, QueueState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a>(
    cv: &Condvar,
    g: std::sync::MutexGuard<'a, QueueState>,
) -> std::sync::MutexGuard<'a, QueueState> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_model_preserves_physicality_and_scales_min_vs() {
        let inner = quake_model::LaBasinModel::scaled(400.0, 8_000.0);
        let scaled = ScaledModel::new(&inner, 1.07);
        let a = inner.sample(1_000.0, 2_000.0, 500.0);
        let b = scaled.sample(1_000.0, 2_000.0, 500.0);
        assert!((b.vp - a.vp * 1.07).abs() < 1e-9);
        assert!((b.vs - a.vs * 1.07).abs() < 1e-9);
        assert_eq!(b.rho, a.rho);
        b.validate();
        let lo = [0.0, 0.0, 0.0];
        let hi = [8_000.0, 8_000.0, 8_000.0];
        assert!((scaled.min_vs_in_box(lo, hi) - inner.min_vs_in_box(lo, hi) * 1.07).abs() < 1e-9);
    }

    #[test]
    fn fingerprints_separate_variants() {
        let inner = quake_model::LaBasinModel::scaled(400.0, 8_000.0);
        let mut p = MeshingParams::new(8_000.0, 0.4);
        p.min_level = 2;
        p.max_level = 4;
        let (_, mesh) = mesh_from_model(&p, &inner);
        let f1 = variant_fingerprint(1.0, 0.05, 100, &mesh);
        assert_ne!(f1, variant_fingerprint(1.1, 0.05, 100, &mesh));
        assert_ne!(f1, variant_fingerprint(1.0, 0.051, 100, &mesh));
        assert_ne!(f1, variant_fingerprint(1.0, 0.05, 101, &mesh));
        assert_eq!(f1, variant_fingerprint(1.0, 0.05, 100, &mesh));
    }
}
