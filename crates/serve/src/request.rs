//! Scenario requests and their canonical content address.
//!
//! A [`ScenarioRequest`] names everything that determines a forward run's
//! output given an engine variant (mesh + material + dt): the point
//! sources, the receiver layout, and the step budget. Its cache key is the
//! hash of a **canonical byte encoding**:
//!
//! - every `f64` enters as its raw little-endian bit pattern (the same
//!   convention as `quake-ckpt` snapshots), so `-0.0` vs `+0.0` or a
//!   one-ulp perturbation are *different* requests — the cache never
//!   rounds,
//! - the source list is sorted by its encoded bytes before hashing, so two
//!   structurally-equal requests that enumerate the same sources in a
//!   different order share one cache entry (summation order is a property
//!   of the *submission*, not of the scenario identity; see DESIGN.md),
//! - the receiver list is hashed **in order** — receivers are output
//!   channels, and a permuted layout is a genuinely different product,
//! - the engine's variant fingerprint (mesh, material scale, dt, step
//!   count) prefixes everything, so two engines over different basins can
//!   share one cache directory.
//!
//! The key is 128 bits of FNV-1a (two independently seeded 64-bit streams
//! over the same bytes). That is a content *address* for honest inputs,
//! not a cryptographic commitment — the store re-verifies every entry's
//! CRC on read, so a collision or corruption degrades to a recompute,
//! never a wrong answer served silently.

use quake_ckpt::Encoder;
use quake_model::PointSource;

/// Version tag mixed into every canonical encoding; bump when the encoding
/// changes so stale cache entries miss instead of decoding wrongly.
pub const REQUEST_ENCODING: &str = "quake.serve.request.v1";

/// Scheduling lane of a request. `Interactive` jobs are popped before any
/// `Batch` job; within a lane the queue is FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    Interactive,
    Batch,
}

/// One scenario to simulate against an engine's shared mesh.
#[derive(Clone, Debug)]
pub struct ScenarioRequest {
    /// Point moment-tensor sources (e.g. an `ExtendedFault::discretize`
    /// output). Executed in the submitted order; hashed in canonical order.
    pub sources: Vec<PointSource>,
    /// Receiver positions (m), snapped to the nearest mesh node. Order
    /// defines the output trace order and is part of the identity.
    pub receivers: Vec<[f64; 3]>,
    /// Step budget: run `min(n_steps, solver.n_steps)` steps;
    /// `None` = the variant's full configured duration.
    pub n_steps: Option<u64>,
    /// Material perturbation: uniform vp/vs scale factor selecting one of
    /// the engine's registered model variants (1.0 = baseline).
    pub model_scale: f64,
    /// Scheduling lane; not part of the content address.
    pub lane: Lane,
}

impl ScenarioRequest {
    /// A baseline-model batch request for `sources`/`receivers` over the
    /// variant's full duration.
    pub fn new(sources: Vec<PointSource>, receivers: Vec<[f64; 3]>) -> ScenarioRequest {
        ScenarioRequest { sources, receivers, n_steps: None, model_scale: 1.0, lane: Lane::Batch }
    }

    pub fn interactive(mut self) -> ScenarioRequest {
        self.lane = Lane::Interactive;
        self
    }

    pub fn with_steps(mut self, n_steps: u64) -> ScenarioRequest {
        self.n_steps = Some(n_steps);
        self
    }

    pub fn with_model_scale(mut self, scale: f64) -> ScenarioRequest {
        self.model_scale = scale;
        self
    }

    /// The canonical byte encoding hashed into the content address.
    /// `variant_fingerprint` pins the mesh/material/dt context; `until_step`
    /// is the *effective* step count (budget clamped to the variant).
    pub fn canonical_bytes(&self, variant_fingerprint: u64, until_step: u64) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_str(REQUEST_ENCODING);
        enc.put_u64(variant_fingerprint);
        enc.put_u64(until_step);
        enc.put_u64(self.model_scale.to_bits());
        enc.put_u64(self.receivers.len() as u64);
        for r in &self.receivers {
            for &c in r {
                enc.put_f64(c);
            }
        }
        // Canonical source order: sort the fixed-width per-source blobs
        // lexicographically. Each blob is 15 f64 bit patterns, so the sort
        // is total and deterministic (bit patterns, not float compares —
        // NaN payloads and -0.0 order stably too).
        let mut blobs: Vec<[u8; 120]> = self.sources.iter().map(source_blob).collect();
        blobs.sort_unstable();
        enc.put_u64(blobs.len() as u64);
        for b in &blobs {
            enc.put_bytes(&b[..]);
        }
        enc.into_bytes()
    }

    /// The 128-bit content address of this request under a variant.
    pub fn key(&self, variant_fingerprint: u64, until_step: u64) -> RequestKey {
        RequestKey::of(&self.canonical_bytes(variant_fingerprint, until_step))
    }
}

/// Fixed-width canonical encoding of one point source: position (3),
/// moment tensor (9), slip delay/rise/amplitude (3) — 15 f64 bit patterns.
fn source_blob(s: &PointSource) -> [u8; 120] {
    let mut out = [0u8; 120];
    let mut k = 0;
    let mut put = |v: f64| {
        out[k..k + 8].copy_from_slice(&v.to_bits().to_le_bytes());
        k += 8;
    };
    for &c in &s.position {
        put(c);
    }
    for row in &s.moment {
        for &m in row {
            put(m);
        }
    }
    put(s.slip.delay);
    put(s.slip.rise);
    put(s.slip.amplitude);
    out
}

/// 64-bit FNV-1a with a caller-chosen offset basis (seed).
fn fnv1a64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A 128-bit content address (two independently seeded FNV-1a streams).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestKey(pub [u8; 16]);

impl RequestKey {
    /// The standard FNV-1a offset basis, and a second basis derived from it
    /// (bit-rotated) for the independent stream.
    const SEED_A: u64 = 0xCBF2_9CE4_8422_2325;
    const SEED_B: u64 = RequestKey::SEED_A.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15;

    pub fn of(bytes: &[u8]) -> RequestKey {
        let a = fnv1a64(bytes, RequestKey::SEED_A);
        let b = fnv1a64(bytes, RequestKey::SEED_B);
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&a.to_le_bytes());
        k[8..].copy_from_slice(&b.to_le_bytes());
        RequestKey(k)
    }

    /// Lower-case hex, the cache file stem.
    pub fn hex(&self) -> String {
        let mut s = String::with_capacity(32);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap_or('0'));
            s.push(char::from_digit((b & 0xF) as u32, 16).unwrap_or('0'));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_model::{ExtendedFault, SlipFunction};

    fn demo_sources() -> Vec<PointSource> {
        ExtendedFault::northridge_like(8_000.0).discretize(3, 2)
    }

    fn demo_request() -> ScenarioRequest {
        ScenarioRequest::new(demo_sources(), vec![[1000.0, 2000.0, 0.0], [3000.0, 1500.0, 0.0]])
    }

    #[test]
    fn permuted_sources_hash_identically() {
        // The cache-determinism hazard: structurally-equal requests must
        // share one entry regardless of enumeration order.
        let a = demo_request();
        let mut b = a.clone();
        b.sources.reverse();
        assert_ne!(
            source_blob(&a.sources[0]),
            source_blob(&b.sources[0]),
            "permutation was a no-op — test is vacuous"
        );
        assert_eq!(a.key(42, 100), b.key(42, 100));
        // A genuine rotation, not just reversal.
        let mut c = a.clone();
        c.sources.rotate_left(1);
        assert_eq!(a.key(42, 100), c.key(42, 100));
    }

    #[test]
    fn every_f64_field_change_changes_the_hash() {
        let base = demo_request();
        let k0 = base.key(42, 100);

        // Perturb each kind of f64 field by one ulp; the key must move.
        let mut r = base.clone();
        r.sources[0].position[1] = ulp_up(r.sources[0].position[1]);
        assert_ne!(r.key(42, 100), k0, "source position ignored by the hash");

        let mut r = base.clone();
        r.sources[1].moment[0][2] = ulp_up(r.sources[1].moment[0][2]);
        assert_ne!(r.key(42, 100), k0, "moment tensor ignored by the hash");

        let mut r = base.clone();
        r.sources[0].slip.rise = ulp_up(r.sources[0].slip.rise);
        assert_ne!(r.key(42, 100), k0, "slip function ignored by the hash");

        let mut r = base.clone();
        r.receivers[1][0] = ulp_up(r.receivers[1][0]);
        assert_ne!(r.key(42, 100), k0, "receiver position ignored by the hash");

        let mut r = base.clone();
        r.model_scale = ulp_up(r.model_scale);
        assert_ne!(r.key(42, 100), k0, "model scale ignored by the hash");

        // Context changes relocate the key too.
        assert_ne!(base.key(43, 100), k0, "variant fingerprint ignored");
        assert_ne!(base.key(42, 101), k0, "step budget ignored");
        // Receiver order is identity: a permuted layout is a new product.
        let mut r = base.clone();
        r.receivers.reverse();
        assert_ne!(r.key(42, 100), k0, "receiver order must be part of the key");
        // The lane is scheduling metadata, not identity.
        let r = base.clone().interactive();
        assert_eq!(r.key(42, 100), k0);
    }

    /// One ulp away from zero (sign-aware: for negative values,
    /// `to_bits() + 1` would move *toward* zero's neighbor below).
    fn ulp_up(v: f64) -> f64 {
        if v.is_sign_negative() {
            f64::from_bits(v.to_bits() - 1)
        } else {
            f64::from_bits(v.to_bits() + 1)
        }
    }

    #[test]
    fn sign_of_zero_and_nan_payloads_are_distinct_identities() {
        let mut a = demo_request();
        a.receivers[0][2] = 0.0;
        let mut b = a.clone();
        b.receivers[0][2] = -0.0;
        assert_ne!(a.key(1, 1), b.key(1, 1), "the encoding must be bitwise, not value-wise");
    }

    #[test]
    fn key_hex_roundtrips_width() {
        let k = demo_request().key(7, 9);
        let h = k.hex();
        assert_eq!(h.len(), 32);
        assert!(h.bytes().all(|b| b.is_ascii_hexdigit()));
        // Sanity: differently-seeded halves disagree (the two streams are
        // actually independent).
        assert_ne!(k.0[..8], k.0[8..]);
    }

    #[test]
    fn slip_function_timing_feeds_the_blob() {
        let mut s = demo_sources();
        let blob0 = source_blob(&s[0]);
        s[0].slip = SlipFunction::new(s[0].slip.delay + 0.25, s[0].slip.rise, s[0].slip.amplitude);
        assert_ne!(source_blob(&s[0]), blob0);
    }
}
