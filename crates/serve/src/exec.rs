//! One scenario execution against a prebuilt solver: the worker's
//! steady-state serving path.
//!
//! [`run_scenario`] is the serve crate's single public entry point into the
//! solver (allowlisted in `quake-lint`'s harness rule). It is a thin
//! re-staging of the `ForwardRun` pipeline with the expensive, scenario-
//! *independent* stages hoisted out: the mesh and [`ElasticSolver`] are
//! built once per engine variant, and all per-run state — displacement
//! fields, workspace, receiver nodes, seismogram buffers, harness scratch —
//! lives in a worker-owned [`ServeScratch`] that is *reset*, never
//! reallocated, between requests. After the first request of each size has
//! warmed the buffers, steady-state serving performs no heap allocation in
//! the reset-and-drive path (machine-checked by the `lint:hot-path` region
//! below).
//!
//! Bit-identity contract: for the same sources/receivers/step budget, the
//! traces returned here are **bit-identical** to a direct
//! `ForwardRun::execute` on an identically configured scenario — same
//! assembly routine, same hook order (`ReceiverHook` before
//! `TelemetryHook`), same `SolverHarness` loop, and a `RunScratch` that is
//! zeroed on entry exactly like a fresh allocation
//! (`crates/serve/tests/equivalence.rs` pins this against `quake-core`).

use crate::cache::CachedResult;
use quake_model::PointSource;
use quake_octree::LinearOctree;
use quake_solver::harness::RunScratch;
use quake_solver::{
    assemble_point_sources, ElasticSolver, NoExchange, ReceiverHook, RunConfig, RunOutcome,
    Seismogram, SolverHarness, SolverState, StepWorkspace, TelemetryHook,
};

/// Worker-owned per-run state, preallocated once and reused across every
/// request the worker serves.
pub struct ServeScratch {
    state: SolverState,
    ws: StepWorkspace,
    run: RunScratch,
    receiver_nodes: Vec<u32>,
    /// Retired seismogram buffers, kept so shrinking the receiver set does
    /// not drop warmed capacity and growing it back allocates nothing.
    trace_pool: Vec<Seismogram>,
}

impl ServeScratch {
    /// Scratch sized for `solver`, with seismogram buffers pre-warmed for up
    /// to `max_receivers` stations (more still works; it allocates once).
    pub fn for_solver(solver: &ElasticSolver<'_>, max_receivers: usize) -> ServeScratch {
        ServeScratch {
            state: solver.initial_state(0, None),
            ws: solver.workspace(),
            run: RunScratch::for_ndof(3 * solver.mesh.n_nodes()),
            receiver_nodes: Vec::with_capacity(max_receivers),
            trace_pool: (0..max_receivers).map(|_| Seismogram::new(solver.dt, 3)).collect(),
        }
    }

    /// The executed-step count of the last run (0 before any run).
    pub fn last_step(&self) -> u64 {
        self.state.step
    }
}

/// The effective step bound of a request under `solver`: the budget clamped
/// to the variant's configured duration (also the `until_step` the cache
/// key is computed with — budget aliases beyond the duration collapse onto
/// one entry).
pub fn effective_steps(solver: &ElasticSolver<'_>, budget: Option<u64>) -> u64 {
    let full = solver.n_steps as u64;
    budget.map_or(full, |b| b.min(full))
}

/// Execute one scenario against a prebuilt solver, reusing `scratch` for
/// every piece of per-run state. Returns the materialized result in cache
/// form (traces + executed steps + analytic element-update cost).
pub fn run_scenario(
    solver: &ElasticSolver<'_>,
    tree: &LinearOctree,
    sources: &[PointSource],
    receivers: &[[f64; 3]],
    step_budget: Option<u64>,
    scratch: &mut ServeScratch,
) -> CachedResult {
    let until = effective_steps(solver, step_budget);
    // Source assembly depends on the request, so it cannot be hoisted; it is
    // proportional to the (small) source count, not the mesh.
    let assembled = assemble_point_sources(solver.mesh, tree, sources);

    // lint:hot-path — the steady-state serving path: reset worker state and
    // drive the harness with zero heap allocation once buffers are warm.
    scratch.receiver_nodes.clear();
    for &p in receivers {
        scratch.receiver_nodes.push(solver.mesh.nearest_node(p));
    }
    let state = &mut scratch.state;
    state.step = 0;
    for v in state.u_prev.iter_mut() {
        *v = 0.0;
    }
    for v in state.u_now.iter_mut() {
        *v = 0.0;
    }
    while state.seismograms.len() > receivers.len() {
        if let Some(tr) = state.seismograms.pop() {
            scratch.trace_pool.push(tr);
        }
    }
    while state.seismograms.len() < receivers.len() {
        match scratch.trace_pool.pop() {
            Some(tr) => state.seismograms.push(tr),
            None => state.seismograms.push(Seismogram::new(solver.dt, 3)),
        }
    }
    for tr in state.seismograms.iter_mut() {
        tr.dt = solver.dt;
        tr.ncomp = 3;
        tr.data.clear();
    }

    // Same config and hook order as `SolverHarness::run_simulation`, so a
    // full-duration serve is bit-identical to `ForwardRun`.
    let cfg = RunConfig::to_step(until).with_sources(&assembled);
    let mut receivers_hook = ReceiverHook::new(&scratch.receiver_nodes);
    let mut telemetry = TelemetryHook::new(solver);
    let harness = SolverHarness::new(solver);
    let outcome = harness.run_with_scratch(
        &cfg,
        state,
        &mut scratch.ws,
        &mut NoExchange,
        &mut [&mut receivers_hook, &mut telemetry],
        &mut scratch.run,
    );
    // lint:hot-path-end
    let executed = match outcome {
        RunOutcome::Finished { executed } => executed,
        RunOutcome::Stopped { reason, .. } => {
            unreachable!("serial scenario run cannot stop for {reason:?}")
        }
    };
    CachedResult {
        executed_steps: executed,
        element_updates: solver.mesh.n_elements() as u64 * executed,
        traces: scratch.state.seismograms.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quake_mesh::mesh_from_model;
    use quake_model::{ExtendedFault, LaBasinModel};
    use quake_solver::ElasticConfig;

    struct Fixture {
        tree: LinearOctree,
        mesh: quake_mesh::HexMesh,
        cfg: ElasticConfig,
        sources: Vec<PointSource>,
        receivers: Vec<[f64; 3]>,
    }

    fn fixture() -> Fixture {
        let extent = 8_000.0;
        let model = LaBasinModel::scaled(400.0, extent);
        let mut meshing = quake_mesh::MeshingParams::new(extent, 0.4);
        meshing.min_level = 2;
        meshing.max_level = 4;
        let (tree, mesh) = mesh_from_model(&meshing, &model);
        Fixture {
            tree,
            mesh,
            cfg: ElasticConfig::new(1.5),
            sources: ExtendedFault::northridge_like(extent).discretize(3, 2),
            receivers: vec![[2_000.0, 3_000.0, 0.0], [5_000.0, 5_000.0, 0.0]],
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_scratch() {
        let fx = fixture();
        let solver = ElasticSolver::new(&fx.mesh, &fx.cfg);

        let mut fresh = ServeScratch::for_solver(&solver, 4);
        let baseline =
            run_scenario(&solver, &fx.tree, &fx.sources, &fx.receivers, None, &mut fresh);
        assert!(baseline.executed_steps > 0);
        assert_eq!(baseline.traces.len(), 2);

        // Dirty the scratch with a different scenario (different sources,
        // more receivers, truncated run), then replay the first.
        let mut other_sources = fx.sources.clone();
        other_sources.truncate(2);
        let wide: Vec<[f64; 3]> =
            (0..4).map(|i| [1_000.0 + 1_500.0 * i as f64, 4_000.0, 0.0]).collect();
        let _ = run_scenario(&solver, &fx.tree, &other_sources, &wide, Some(3), &mut fresh);

        let replay = run_scenario(&solver, &fx.tree, &fx.sources, &fx.receivers, None, &mut fresh);
        assert_eq!(replay.executed_steps, baseline.executed_steps);
        for (a, b) in replay.traces.iter().zip(&baseline.traces) {
            assert_eq!(a.data.len(), b.data.len());
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "scratch reuse changed the waveform");
            }
        }
    }

    #[test]
    fn step_budget_truncates_and_clamps() {
        let fx = fixture();
        let solver = ElasticSolver::new(&fx.mesh, &fx.cfg);
        let mut scratch = ServeScratch::for_solver(&solver, 2);
        assert_eq!(effective_steps(&solver, None), solver.n_steps as u64);
        assert_eq!(effective_steps(&solver, Some(5)), 5);
        assert_eq!(effective_steps(&solver, Some(u64::MAX)), solver.n_steps as u64);

        let short =
            run_scenario(&solver, &fx.tree, &fx.sources, &fx.receivers, Some(4), &mut scratch);
        assert_eq!(short.executed_steps, 4);
        assert_eq!(short.traces[0].n_samples(), 4);
        assert_eq!(short.element_updates, fx.mesh.n_elements() as u64 * 4);

        // A budget past the configured duration clamps to the full run.
        let clamped = run_scenario(
            &solver,
            &fx.tree,
            &fx.sources,
            &fx.receivers,
            Some(u64::MAX),
            &mut scratch,
        );
        assert_eq!(clamped.executed_steps, solver.n_steps as u64);
    }

    #[test]
    fn truncated_run_is_a_prefix_of_the_full_run() {
        let fx = fixture();
        let solver = ElasticSolver::new(&fx.mesh, &fx.cfg);
        let mut scratch = ServeScratch::for_solver(&solver, 2);
        let full = run_scenario(&solver, &fx.tree, &fx.sources, &fx.receivers, None, &mut scratch);
        let half = full.executed_steps / 2;
        let short =
            run_scenario(&solver, &fx.tree, &fx.sources, &fx.receivers, Some(half), &mut scratch);
        for (s, f) in short.traces.iter().zip(&full.traces) {
            assert_eq!(s.data.len(), half as usize * 3);
            for (x, y) in s.data.iter().zip(&f.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "truncation is not a prefix");
            }
        }
    }
}
