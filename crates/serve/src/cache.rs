//! The content-addressed result store: `RequestKey -> seismogram set`.
//!
//! One file per key under the cache directory:
//!
//! ```text
//! <dir>/<key-hex32>.qres
//! ```
//!
//! Entries reuse the `quake-ckpt` frame verbatim — magic, version, kind
//! tag, CRC-32 trailer (`quake_ckpt::format::{encode_file, decode_file}`)
//! — with kind [`RESULT_KIND`] and the executed step count in the frame's
//! step field. Writes are atomic (write `<name>.tmp`, fsync, rename), so a
//! reader racing a writer sees either no entry or a complete one, never a
//! partial file. Reads verify the CRC and full decode; **any** failure —
//! truncation, bit rot, a foreign kind, a stale encoding version — makes
//! [`ResultCache::get`] return `None`, and the engine recomputes and
//! rewrites the entry. A corrupt cache can cost time, never correctness.
//!
//! Eviction honors a byte budget: after each write, entries are dropped
//! oldest-first (modification time, then file name as the deterministic
//! tie-break) until the directory total is within budget. The entry just
//! written is exempt from its own eviction pass, so a single oversized
//! result still serves its first consumer.
//!
//! This file is in `quake-lint`'s no-panic scope: like the checkpoint
//! reader, every path here must degrade to `None`/`Err` on arbitrary
//! on-disk bytes — a poisoned cache must not abort a serving worker.

use crate::request::RequestKey;
use quake_ckpt::format::{decode_file, encode_file};
use quake_ckpt::{CkptError, Decoder, Encoder};
use quake_solver::Seismogram;
use quake_telemetry::Registry;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Frame kind tag of cache entries; bump the version suffix when the
/// payload layout changes (old entries then miss instead of mis-decoding).
pub const RESULT_KIND: &str = "quake.serve.result.v1";

/// File extension of finalized cache entries.
pub const EXTENSION: &str = "qres";

/// A materialized scenario result, as stored in (and served from) the
/// cache. `f64` samples are raw bit patterns on disk, so a cache hit is
/// **bit-identical** to the run that populated the entry.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedResult {
    /// Steps the producing run executed.
    pub executed_steps: u64,
    /// Analytic cost of the producing run (element updates = elements x
    /// steps) — the admission-control currency, persisted so a cache hit
    /// can report the cost it *avoided*.
    pub element_updates: u64,
    /// One trace per receiver, in request order.
    pub traces: Vec<Seismogram>,
}

impl CachedResult {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.element_updates);
        enc.put_u64(self.traces.len() as u64);
        for tr in &self.traces {
            enc.put_f64(tr.dt);
            enc.put_u64(tr.ncomp as u64);
            enc.put_f64_slice(&tr.data);
        }
        enc.into_bytes()
    }

    fn decode(executed_steps: u64, payload: &[u8]) -> Result<CachedResult, CkptError> {
        let mut dec = Decoder::new(payload);
        let element_updates = dec.take_u64()?;
        let n_traces = dec.take_u64()? as usize;
        // Each trace costs at least 24 payload bytes; a huge count in a
        // corrupt header must not drive a huge allocation.
        if n_traces.saturating_mul(24) > payload.len() {
            return Err(CkptError::Malformed("trace count disagrees with payload size"));
        }
        let mut traces = Vec::with_capacity(n_traces);
        for _ in 0..n_traces {
            let dt = dec.take_f64()?;
            let ncomp = dec.take_u64()? as usize;
            if ncomp == 0 || ncomp > 16 {
                return Err(CkptError::Malformed("implausible component count"));
            }
            let data = dec.take_f64_vec()?;
            if !data.len().is_multiple_of(ncomp) {
                return Err(CkptError::Malformed("trace length not a multiple of ncomp"));
            }
            traces.push(Seismogram { dt, ncomp, data });
        }
        dec.finish()?;
        Ok(CachedResult { executed_steps, element_updates, traces })
    }
}

/// The on-disk content-addressed store.
pub struct ResultCache {
    dir: PathBuf,
    /// Byte budget for the directory total (0 = unlimited).
    byte_budget: u64,
}

impl ResultCache {
    /// Open (creating if missing) a cache under `dir` with `byte_budget`
    /// bytes of retention (0 = keep everything).
    pub fn open(dir: &Path, byte_budget: u64) -> Result<ResultCache, CkptError> {
        fs::create_dir_all(dir)?;
        Ok(ResultCache { dir: dir.to_path_buf(), byte_budget })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, key: &RequestKey) -> PathBuf {
        self.dir.join(format!("{}.{EXTENSION}", key.hex()))
    }

    /// Look up a key. Returns `None` on absence *or* on any decode/CRC
    /// failure — a damaged entry reads as a miss and will be recomputed.
    /// Records `serve_cache/bytes_read` and one `serve_cache/invalid_entry`
    /// per rejected file on `reg`.
    pub fn get(&self, key: &RequestKey, reg: &Registry) -> Option<CachedResult> {
        let path = self.path_of(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => return None,
        };
        match decode_file(RESULT_KIND, &bytes)
            .and_then(|(steps, payload)| CachedResult::decode(steps, payload))
        {
            Ok(res) => {
                reg.add("serve_cache/bytes_read", bytes.len() as u64);
                Some(res)
            }
            Err(_) => {
                // Damaged entry: count it, drop it so the rewrite is clean,
                // and report a miss.
                reg.add("serve_cache/invalid_entry", 1);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Insert (or overwrite) an entry atomically, then evict oldest-first
    /// down to the byte budget. Records `serve_cache/bytes_written` and
    /// `serve_cache/evictions` on `reg`.
    pub fn put(
        &self,
        key: &RequestKey,
        result: &CachedResult,
        reg: &Registry,
    ) -> Result<(), CkptError> {
        let img = encode_file(RESULT_KIND, result.executed_steps, &result.encode());
        let final_path = self.path_of(key);
        let tmp_path = self.dir.join(format!("{}.{EXTENSION}.tmp", key.hex()));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&img)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        reg.add("serve_cache/bytes_written", img.len() as u64);
        if self.byte_budget > 0 {
            self.evict_to_budget(&final_path, reg);
        }
        Ok(())
    }

    /// Drop entries oldest-first until the directory total fits the budget.
    /// `just_written` survives its own pass (a single oversized entry must
    /// still serve its first consumer).
    fn evict_to_budget(&self, just_written: &Path, reg: &Registry) {
        let mut entries = self.entries();
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        // Oldest first; name ties the order deterministically when a fast
        // filesystem gives several entries the same mtime.
        entries.sort_by(|a, b| (a.mtime, &a.path).cmp(&(b.mtime, &b.path)));
        for e in &entries {
            if total <= self.byte_budget {
                break;
            }
            if e.path == just_written {
                continue;
            }
            if fs::remove_file(&e.path).is_ok() {
                total -= e.bytes;
                reg.add("serve_cache/evictions", 1);
            }
        }
    }

    /// Finalized entries currently on disk (tmp leftovers and foreign files
    /// are ignored).
    fn entries(&self) -> Vec<EntryMeta> {
        let mut out = Vec::new();
        let Ok(rd) = fs::read_dir(&self.dir) else { return out };
        for entry in rd.flatten() {
            let path = entry.path();
            let is_entry = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(&format!(".{EXTENSION}")))
                .is_some_and(|stem| {
                    stem.len() == 32 && stem.bytes().all(|b| b.is_ascii_hexdigit())
                });
            if !is_entry {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let Ok(mtime) = meta.modified() else { continue };
            out.push(EntryMeta { path, bytes: meta.len(), mtime });
        }
        out
    }

    /// Number of finalized entries.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of finalized entries.
    pub fn total_bytes(&self) -> u64 {
        self.entries().iter().map(|e| e.bytes).sum()
    }
}

struct EntryMeta {
    path: PathBuf,
    bytes: u64,
    mtime: std::time::SystemTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("quake-serve-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn demo_result(seed: u64, samples: usize) -> CachedResult {
        let mut traces = Vec::new();
        for t in 0..2 {
            let mut tr = Seismogram::new(0.01, 3);
            for k in 0..samples {
                let v = (seed as f64) * 0.1 + t as f64 + k as f64 * 1e-3;
                tr.push(&[v, -v, v * 0.5]);
            }
            traces.push(tr);
        }
        CachedResult { executed_steps: samples as u64, element_updates: 1000 * seed, traces }
    }

    fn key_of(seed: u64) -> RequestKey {
        RequestKey::of(&seed.to_le_bytes())
    }

    #[test]
    fn put_get_roundtrips_bit_exact() {
        let dir = tmpdir("roundtrip");
        let cache = ResultCache::open(&dir, 0).unwrap();
        let reg = Registry::new(0);
        let res = demo_result(3, 40);
        cache.put(&key_of(3), &res, &reg).unwrap();
        let got = cache.get(&key_of(3), &reg).unwrap();
        assert_eq!(got.executed_steps, res.executed_steps);
        assert_eq!(got.element_updates, res.element_updates);
        for (a, b) in got.traces.iter().zip(&res.traces) {
            assert_eq!(a.dt.to_bits(), b.dt.to_bits());
            assert_eq!(a.ncomp, b.ncomp);
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(cache.get(&key_of(4), &reg).is_none());
        assert!(reg.counter("serve_cache/bytes_read").unwrap() > 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_or_truncated_entry_reads_as_miss_and_is_recomputable() {
        // Mirrors the CheckpointReader corruption test: a damaged entry is
        // skipped (served as a miss), then recomputed and served again.
        let dir = tmpdir("corrupt");
        let cache = ResultCache::open(&dir, 0).unwrap();
        let reg = Registry::new(0);
        let key = key_of(9);
        let res = demo_result(9, 25);
        cache.put(&key, &res, &reg).unwrap();

        // Bit-flip the payload.
        let path = dir.join(format!("{}.{EXTENSION}", key.hex()));
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.get(&key, &reg).is_none(), "bit rot must read as a miss");
        assert_eq!(reg.counter("serve_cache/invalid_entry"), Some(1));

        // "Recompute": rewrite the entry; it serves again.
        cache.put(&key, &res, &reg).unwrap();
        assert_eq!(cache.get(&key, &reg).unwrap(), res);

        // Truncation reads as a miss too.
        let good = fs::read(&path).unwrap();
        fs::write(&path, &good[..good.len() / 3]).unwrap();
        assert!(cache.get(&key, &reg).is_none());
        // A wrong-kind file under the right name is refused by the frame.
        let foreign = encode_file("quake.other.kind.v1", 0, b"zzz");
        fs::write(&path, foreign).unwrap();
        assert!(cache.get(&key, &reg).is_none());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn eviction_honors_the_byte_budget_oldest_first() {
        let dir = tmpdir("evict");
        // Budget sized so roughly two demo entries fit.
        let probe = encode_file(RESULT_KIND, 0, &demo_result(0, 30).encode()).len() as u64;
        let cache = ResultCache::open(&dir, probe * 2 + probe / 2).unwrap();
        let reg = Registry::new(0);
        for seed in 1..=4u64 {
            cache.put(&key_of(seed), &demo_result(seed, 30), &reg).unwrap();
            // Distinct mtimes so "oldest" is well defined on coarse clocks.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert!(cache.total_bytes() <= probe * 2 + probe / 2, "budget exceeded");
        assert!(cache.len() >= 2, "over-evicted: {} entries left", cache.len());
        // The newest entries survive; the oldest were dropped.
        assert!(cache.get(&key_of(4), &reg).is_some());
        assert!(cache.get(&key_of(3), &reg).is_some());
        assert!(cache.get(&key_of(1), &reg).is_none());
        assert!(reg.counter("serve_cache/evictions").unwrap() >= 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn concurrent_reads_never_see_a_partial_entry() {
        // A reader hammering get() while a writer rewrites the same key
        // must only ever observe a miss or a complete, valid result —
        // the atomic tmp+rename protocol's whole point.
        let dir = tmpdir("race");
        let cache = Arc::new(ResultCache::open(&dir, 0).unwrap());
        let key = key_of(77);
        let stop = Arc::new(AtomicBool::new(false));
        // Seed the entry so the reader races rewrites, not writer startup.
        cache.put(&key, &demo_result(1, 4000), &Registry::disabled()).unwrap();

        let w_cache = Arc::clone(&cache);
        let w_stop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let reg = Registry::disabled();
            // Alternate two sizable payloads so a torn read would be torn
            // between genuinely different byte lengths.
            let a = demo_result(1, 4000);
            let b = demo_result(2, 2000);
            let mut n = 0u64;
            while !w_stop.load(Ordering::Relaxed) {
                let r = if n % 2 == 0 { &a } else { &b };
                w_cache.put(&key, r, &reg).unwrap();
                n += 1;
            }
            n
        });

        let reg = Registry::new(0);
        let mut hits = 0u64;
        for _ in 0..2000 {
            if let Some(got) = cache.get(&key, &reg) {
                hits += 1;
                // A complete entry: internally consistent lengths and one
                // of the two written element_update stamps.
                assert!(got.element_updates == 1000 || got.element_updates == 2000);
                let expect = if got.element_updates == 1000 { 4000 } else { 2000 };
                for tr in &got.traces {
                    assert_eq!(tr.n_samples(), expect);
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        let writes = writer.join().unwrap();
        assert!(writes > 0);
        assert!(hits > 0, "reader never saw a single entry — race test is vacuous");
        assert_eq!(
            reg.counter("serve_cache/invalid_entry"),
            None,
            "reader observed a partial/corrupt entry during concurrent writes"
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn tmp_leftovers_and_foreign_files_are_not_entries() {
        let dir = tmpdir("foreign");
        let cache = ResultCache::open(&dir, 0).unwrap();
        let reg = Registry::disabled();
        cache.put(&key_of(1), &demo_result(1, 5), &reg).unwrap();
        fs::write(dir.join("deadbeef.qres.tmp"), b"half").unwrap();
        fs::write(dir.join("notes.txt"), b"hi").unwrap();
        fs::write(dir.join("short.qres"), b"not a key").unwrap();
        assert_eq!(cache.len(), 1);
        fs::remove_dir_all(dir).unwrap();
    }
}
