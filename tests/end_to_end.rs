//! Cross-crate integration tests: the full pipelines of the paper exercised
//! through the public facade.

use quake::antiplane::{FaultSource, ShConfig, ShSolver};
use quake::inverse::{
    invert_multiscale, invert_source, GnConfig, MaterialMap, MultiscaleConfig,
    SourceInversionConfig,
};
use quake::mesh::{mesh_from_model, MeshingParams};
use quake::model::{layer_over_halfspace, HomogeneousModel, Material};
use quake::solver::analytic::sh1d_reference;
use quake::solver::wave::{forward, ScalarWaveEq};
use quake::solver::{ElasticConfig, ElasticSolver, SolverHarness};

/// Fig 2.2-grade verification: the 3-D hexahedral solver on a layered
/// column against the fine 1-D SH finite-difference reference.
#[test]
fn layer_over_halfspace_matches_1d_reference() {
    let depth = 8_000.0;
    let soft = Material::new(2400.0, 1200.0, 1900.0);
    let stiff = Material::new(4800.0, 2400.0, 2500.0);
    let layer = 2_000.0;
    let model = layer_over_halfspace(layer, soft, stiff);

    // Mesh the cube; pseudo-1-D initial condition: up-going SH pulse in the
    // halfspace, uniform in x and y. (The transmitted pulse compresses by
    // vs1/vs2, so the pulse must stay resolved in the soft layer.)
    let mut params = MeshingParams::new(depth, 0.4);
    params.min_level = 4;
    params.max_level = 6;
    let (_tree, mesh) = mesh_from_model(&params, &model);
    let mut cfg = ElasticConfig::new(2.0);
    cfg.abc = [false, false, false, false, false, true]; // only the bottom absorbs
    cfg.cfl = 0.4;
    let solver = ElasticSolver::new(&mesh, &cfg);

    let sigma = 1_200.0;
    let g = move |z: f64| (-((z - 4_800.0) / sigma).powi(2)).exp();
    let dgdz = move |z: f64| -2.0 * (z - 4_800.0) / (sigma * sigma) * g(z);
    let n = mesh.n_nodes();
    let (mut u0, mut v0) = (vec![0.0; 3 * n], vec![0.0; 3 * n]);
    for (i, c) in mesh.coords.iter().enumerate() {
        u0[3 * i] = g(c[2]);
        v0[3 * i] = stiff.vs * dgdz(c[2]); // traveling toward -z (up)
    }
    // Free-surface-violation pollution from the x faces travels inward at
    // the shear speed (~2400 m/s over 4 km): keep t_end below ~1.6 s.
    let t_end = 1.3;
    let steps = (t_end / solver.dt).round() as usize;
    let (_, un) = SolverHarness::new(&solver).run_to_state(Some((&u0, &v0)), steps);
    let t_actual = steps as f64 * solver.dt;

    // 1-D reference at high resolution.
    let refsol = sh1d_reference(
        depth,
        4000,
        |z| if z < layer { 1900.0 } else { 2500.0 },
        |z| if z < layer { 1900.0 * 1200.0f64.powi(2) } else { 2500.0 * 2400.0f64.powi(2) },
        g,
        |z| stiff.vs * dgdz(z),
        t_end + 0.1,
        &[t_actual],
    );
    let uref = &refsol.u[0];

    // Compare along the center column.
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, c) in mesh.coords.iter().enumerate() {
        let mid = depth / 2.0;
        if (c[0] - mid).abs() < 1e-6 && (c[1] - mid).abs() < 1e-6 {
            let zi = (c[2] / refsol.dz).round() as usize;
            let exact = uref[zi.min(uref.len() - 1)];
            num += (un[3 * i] - exact).powi(2);
            den += exact * exact;
        }
    }
    let rel = (num / den).sqrt();
    assert!(rel < 0.25, "3-D vs 1-D reference mismatch: {rel}");
}

/// End-to-end material inversion through the facade: recover a basin blob.
#[test]
fn multiscale_material_inversion_recovers_blob() {
    let s = ShSolver::new(&ShConfig {
        nx: 24,
        nz: 14,
        h: 800.0,
        rho: 2200.0,
        dt: 0.07,
        n_steps: 90,
        receivers: vec![],
        mu_background: 2200.0 * 2000.0 * 2000.0,
        absorbing: [true; 3],
    })
    .with_surface_receivers(12);
    let base = 2200.0 * 2000.0f64 * 2000.0;
    let mu_true = s.mu_from(|x, z| {
        let r2 = ((x - 9_600.0) / 4_000.0).powi(2) + ((z - 3_000.0) / 2_500.0).powi(2);
        base * (1.0 - 0.3 * (-r2).exp())
    });
    let centers: Vec<[f64; 3]> = (0..s.n_elements())
        .map(|e| {
            let c = s.elem_center(e);
            [c[0], c[1], 0.0]
        })
        .collect();
    let src = s.node(5, 7);
    let forcing = move |k: usize, f: &mut [f64]| {
        if k < 8 {
            f[src] += 1e8;
        }
    };
    let data = forward(&s, &mu_true, &mut |k, f| forcing(k, f), false).traces;
    let cfg = MultiscaleConfig {
        grids: vec![[2, 2, 1], [4, 3, 1], [7, 5, 1]],
        domain: [24.0 * 800.0, 14.0 * 800.0, 1.0],
        tv_eps: 0.02 * base / 2000.0,
        tv_beta: 1e-28,
        per_level: GnConfig {
            max_gn_iters: 12,
            max_cg_iters: 30,
            grad_tol: 1e-2,
            barrier: Some((0.05 * base, 1e-7)),
            ..GnConfig::default()
        },
        freq_schedule: None,
    };
    let (m, levels) = invert_multiscale(&s, &forcing, &data, &centers, base, &cfg);
    let j0 = levels[0].stats.misfit_history[0];
    let jn = levels.last().unwrap().stats.misfit_history.last().copied().unwrap();
    assert!(jn < 0.05 * j0, "misfit {j0} -> {jn}");
    // The recovered field must be softer near the blob than far away.
    let map = MaterialMap::new(&centers, cfg.domain, [7, 5, 1]);
    let mu_inv = map.interpolate(&m);
    let at = |x: f64, z: f64| {
        let e = s.elem((x / 800.0) as usize, (z / 800.0) as usize);
        mu_inv[e]
    };
    let blob = at(9_600.0, 3_000.0);
    let far = at(2_000.0, 9_000.0);
    assert!(blob < 0.9 * far, "blob not recovered: center {blob:.3e} vs far {far:.3e}");
}

/// End-to-end source inversion through the facade.
#[test]
fn source_inversion_end_to_end() {
    let s = ShSolver::new(&ShConfig {
        nx: 18,
        nz: 10,
        h: 600.0,
        rho: 2200.0,
        dt: 0.05,
        n_steps: 180,
        receivers: vec![],
        mu_background: 2200.0 * 2000.0 * 2000.0,
        absorbing: [true; 3],
    })
    .with_surface_receivers(12);
    let mu = vec![2200.0 * 2000.0f64 * 2000.0; s.n_elements()];
    let fault = FaultSource::from_hypocenter(&s, &mu, 9, 2, 6, 4, 2800.0, 1.4, 1.0);
    let dt = s.dt();
    let data = forward(&s, &mu, &mut |k, f| fault.add_force(k as f64 * dt, f), false).traces;
    let ns = fault.n_segments();
    let cfg = SourceInversionConfig {
        gn: GnConfig { max_gn_iters: 35, grad_tol: 1e-7, ..GnConfig::default() },
        beta_delay: 1e-6,
        beta_rise: 1e-6,
        beta_amplitude: 1e-6,
        ..SourceInversionConfig::default()
    };
    let out = invert_source(
        &s,
        &fault,
        &mu,
        &data,
        (&vec![0.4; ns], &vec![2.2; ns], &vec![0.6; ns]),
        &cfg,
    );
    let j0 = out.stats.misfit_history[0];
    let jn = *out.stats.misfit_history.last().unwrap();
    assert!(jn < 1e-3 * j0, "misfit {j0} -> {jn}");
    for (j, p) in fault.params.iter().enumerate() {
        assert!((out.rises[j] - p.rise).abs() < 0.15, "rise {j}");
        assert!((out.delays[j] - p.delay).abs() < 0.1, "delay {j}");
    }
}

/// Forward modeling sanity across the whole stack: energy reaches a distant
/// station no earlier than physically possible.
#[test]
fn p_wave_arrival_respects_causality() {
    let mat = Material::new(4000.0, 2300.0, 2500.0);
    let model = HomogeneousModel(mat);
    let mut params = MeshingParams::new(12_000.0, 0.5);
    params.min_level = 3;
    params.max_level = 4;
    let (tree, mesh) = mesh_from_model(&params, &model);
    let source = quake::model::PointSource {
        position: [6_000.0, 6_000.0, 6_000.0],
        moment: quake::model::DoubleCouple::moment_tensor(0.4, 0.9, 0.2, 1e16),
        slip: quake::model::SlipFunction::new(0.0, 0.5, 1.0),
    };
    let sources = quake::solver::assemble_point_sources(&mesh, &tree, &[source]);
    let station = [6_000.0, 6_000.0, 0.0]; // 6 km above the source
    let rec = vec![mesh.nearest_node(station)];
    let solver = ElasticSolver::new(&mesh, &ElasticConfig::new(3.0));
    let run = solver.run(&sources, &rec, None);
    let seis = &run.seismograms[0];
    // First sample exceeding 1% of the peak must arrive no earlier than the
    // P travel time (6 km / 4 km/s = 1.5 s), with a tolerance for the
    // source ramp and numerical front width.
    let mag: Vec<f64> = (0..seis.n_samples())
        .map(|k| (0..3).map(|c| seis.data[3 * k + c].powi(2)).sum::<f64>().sqrt())
        .collect();
    let peak = mag.iter().cloned().fold(0.0, f64::max);
    assert!(peak > 0.0);
    let arrival = mag.iter().position(|&v| v > 0.01 * peak).unwrap() as f64 * run.dt;
    assert!(arrival > 0.8 * 1.5, "energy arrived impossibly early: {arrival} s (P time 1.5 s)");
    assert!(arrival < 2.5, "P arrival far too late: {arrival} s");
}
