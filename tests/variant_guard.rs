//! Guard against the run-variant explosion creeping back.
//!
//! The logic lives in quake-lint's `harness-allowlist` rule (one place,
//! token-based, shared with `cargo run -p quake-lint -- --deny` in CI);
//! this test is the thin tier-1 wrapper that runs just that rule over the
//! real tree. Add an allowlist entry (in
//! `crates/lint/src/rules/harness_allowlist.rs`) only for a genuinely new
//! *workflow* — new combinations of behavior belong in `RunConfig` +
//! `StepHook`s.

use std::path::Path;

use quake_lint::rules::{HarnessAllowlist, Rule};

#[test]
fn no_new_public_run_variants_outside_the_harness() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = quake_lint::collect_files(root);
    assert!(!files.is_empty(), "source scan found nothing — wrong root?");

    let mut rule = HarnessAllowlist::default();
    let mut findings = Vec::new();
    for f in &files {
        rule.check(f, &mut findings);
    }

    assert!(rule.seen >= 5, "the scan no longer sees the known entry points ({})", rule.seen);
    assert!(
        findings.is_empty(),
        "new public run_* variant(s) outside the harness — route them through \
         SolverHarness/RunConfig instead:\n{}",
        findings.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
    );
}
