//! Guard against the run-variant explosion creeping back.
//!
//! Every public `run_*` entry point must delegate to the one
//! `SolverHarness` step loop; new `pub fn run_*` definitions outside the
//! allowlist below fail this test (CI runs it in the lint job). Add a
//! variant here only if it is a genuinely new *workflow*, not a new
//! combination of hooks — combinations belong in `RunConfig` + `StepHook`s.

use std::path::{Path, PathBuf};

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn no_new_public_run_variants_outside_the_harness() {
    // (file, allowed names); "*" allows the whole file (the harness module).
    let allowed: &[(&str, &[&str])] = &[
        ("crates/parcomm/src/lib.rs", &["run_spmd"]),
        ("crates/solver/src/harness.rs", &["*"]),
        ("crates/solver/src/distributed.rs", &["run_distributed", "run_distributed_recoverable"]),
        ("crates/solver/src/tet.rs", &["run_to_state"]),
        ("crates/core/src/forward.rs", &["run_forward"]),
    ];

    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    rs_files(&root.join("src"), &mut files);
    assert!(!files.is_empty(), "source scan found nothing — wrong root?");

    let mut violations = Vec::new();
    let mut seen = 0usize;
    for file in files {
        let rel = file.strip_prefix(root).unwrap().to_string_lossy().replace('\\', "/");
        let text = std::fs::read_to_string(&file).unwrap();
        for (lineno, line) in text.lines().enumerate() {
            let Some(pos) = line.find("pub fn run_") else { continue };
            let name: String = line[pos + "pub fn ".len()..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            seen += 1;
            let ok = allowed.iter().any(|(f, names)| {
                *f == rel && (names.contains(&"*") || names.contains(&name.as_str()))
            });
            if !ok {
                violations.push(format!("{rel}:{}: pub fn {name}", lineno + 1));
            }
        }
    }
    assert!(seen >= 5, "the scan no longer sees the known entry points ({seen})");
    assert!(
        violations.is_empty(),
        "new public run_* variant(s) outside the harness — route them through \
         SolverHarness/RunConfig instead:\n{}",
        violations.join("\n")
    );
}
