#!/bin/bash
set -x
cd /root/repo
for b in fig2_2_verification fig2_1_etree fig2_3_mesh table3_1 fig3_3_source_inversion fig2_4_hex_vs_tet fig2_5_snapshots table2_1 fig3_2_material_inversion; do
  echo "=== $b ==="
  timeout 900 cargo run --release -p quake-bench --bin $b > results/$b.txt 2>&1
  echo "exit: $?"
done
echo ALL_DONE
